package opt

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/cost"
	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/query"
)

// This file is the engine's fail-soft layer. The paper's whole premise is
// that run-time conditions are uncertain; the same discipline is applied to
// the optimizer's own run time here:
//
//   - every search loop passes through cheap cancellation checkpoints that
//     honor a context.Context deadline and a work Budget metered by the
//     session's own instrumentation counters;
//   - the search is *anytime*: on interruption the engine degrades down a
//     ladder — best complete plan found so far, then greedy completion of
//     the deepest partial DP result, then greedy join ordering from scratch
//     at the parameter distribution's mean — so a valid executable plan is
//     always returned, flagged via Result.Degraded;
//   - cost-formula evaluations are guarded against NaN/±Inf poisoning and
//     instrumented as fault-injection sites, and the whole primary search
//     runs under a recover so a panicking coster degrades instead of
//     escaping.

// Budget bounds one optimization run's work in units of the engine's own
// Stats counters. The zero value means unlimited. Budgets are metered
// against the *session* totals, so the b bucket searches of Algorithms A/B
// share one budget rather than getting b fresh ones.
type Budget struct {
	// MaxCostEvals caps cost-formula evaluations (Stats.CostEvals).
	MaxCostEvals int
	// MaxSubsets caps lattice nodes visited (Stats.Subsets).
	MaxSubsets int
}

// Unlimited reports whether the budget imposes no bound.
func (b Budget) Unlimited() bool { return b.MaxCostEvals <= 0 && b.MaxSubsets <= 0 }

// DegradeReason says why a Result is degraded.
type DegradeReason int

// Degradation causes.
const (
	// DegradeNone: the search ran to completion.
	DegradeNone DegradeReason = iota
	// DegradeDeadline: the context was cancelled or its deadline expired.
	DegradeDeadline
	// DegradeBudget: the work budget was exhausted mid-search.
	DegradeBudget
	// DegradePanic: the search panicked and was recovered.
	DegradePanic
	// DegradeNonFinite: a coster produced NaN/±Inf costs; the affected
	// candidates were discarded, so the returned plan may be suboptimal.
	DegradeNonFinite
)

// String implements fmt.Stringer.
func (r DegradeReason) String() string {
	switch r {
	case DegradeNone:
		return "none"
	case DegradeDeadline:
		return "deadline"
	case DegradeBudget:
		return "budget"
	case DegradePanic:
		return "panic"
	case DegradeNonFinite:
		return "non-finite-cost"
	default:
		return fmt.Sprintf("DegradeReason(%d)", int(r))
	}
}

// Ladder rungs recorded in Result.Rung.
const (
	// RungFull: the configured search completed (Rung is empty).
	RungFull = ""
	// RungPartial: the best complete plan the interrupted search had
	// already finished (for the pipelined space this is a fully-scored
	// left-deep plan; for the DPs a root candidate).
	RungPartial = "partial-search"
	// RungGreedy: greedy join ordering at the distribution mean, possibly
	// seeded with the deepest partial DP result.
	RungGreedy = "greedy"
)

// Sentinel errors of the fail-soft layer.
var (
	// ErrBudgetExhausted reports an interrupted run for which not even the
	// greedy fallback could produce a plan (e.g. the query itself is
	// unplannable).
	ErrBudgetExhausted = errors.New("opt: work budget exhausted")
	// ErrNonFinite reports that every candidate's cost evaluated to
	// NaN/±Inf, so any returned plan would be garbage.
	ErrNonFinite = errors.New("opt: all candidate costs were non-finite")
)

// panicError wraps a recovered panic value so callers can distinguish a
// recovered search panic from an ordinary error.
type panicError struct{ val any }

func (p panicError) Error() string { return fmt.Sprintf("opt: recovered panic: %v", p.val) }

// RecoveredPanic returns the recovered panic value inside err, if any.
func RecoveredPanic(err error) (any, bool) {
	var pe panicError
	if errors.As(err, &pe) {
		return pe.val, true
	}
	return nil, false
}

// ctxPollInterval is how many cost evaluations pass between polls of the
// request context. Polling a context is an atomic load plus an interface
// call — cheap, but not free in the DP inner loop.
const ctxPollInterval = 64

// beginRun arms the session for one optimization run: the request context,
// a cleared stop cause, and the non-finite watermark that distinguishes
// this run's poisoned evaluations from earlier ones in the same session.
func (ctx *Context) beginRun(rc context.Context) {
	if rc == nil {
		rc = context.Background()
	}
	ctx.reqCtx = rc
	ctx.stopCause = nil
	ctx.pollCountdown = 1 // poll immediately: catch already-expired contexts
	ctx.nonFiniteMark = ctx.Count.NonFiniteCosts
	ctx.beginObs()
}

// interrupt records the first interruption cause; later causes are ignored.
// In a parallel run the cause is also published to the shared run state, so
// every worker observes the stop at its next checkpoint.
func (ctx *Context) interrupt(cause error) {
	if ctx.stopCause == nil {
		ctx.stopCause = cause
	}
	if p := ctx.par; p != nil {
		p.setCause(cause)
	}
}

// stopped reports whether the run has been interrupted — locally, or (in a
// parallel run) by any worker.
func (ctx *Context) stopped() bool {
	return ctx.stopCause != nil || (ctx.par != nil && ctx.par.stop.Load())
}

// sawNonFinite reports whether this run poisoned any cost evaluation.
func (ctx *Context) sawNonFinite() bool { return ctx.Count.NonFiniteCosts > ctx.nonFiniteMark }

// checkBudget trips the budget and context checkpoints. It is called after
// counters advance; the context is polled every ctxPollInterval calls.
func (ctx *Context) checkBudget() {
	if p := ctx.par; p != nil {
		ctx.checkBudgetPar(p)
		return
	}
	if ctx.stopCause != nil {
		return
	}
	b := ctx.Opts.Budget
	if b.MaxCostEvals > 0 && ctx.Count.CostEvals >= b.MaxCostEvals {
		ctx.interrupt(fmt.Errorf("%w: %d cost evaluations (budget %d)", ErrBudgetExhausted, ctx.Count.CostEvals, b.MaxCostEvals))
		return
	}
	if b.MaxSubsets > 0 && ctx.Count.Subsets >= b.MaxSubsets {
		ctx.interrupt(fmt.Errorf("%w: %d subsets (budget %d)", ErrBudgetExhausted, ctx.Count.Subsets, b.MaxSubsets))
		return
	}
	ctx.pollCountdown--
	if ctx.pollCountdown > 0 {
		return
	}
	ctx.pollCountdown = ctxPollInterval
	if ctx.reqCtx != nil {
		if err := ctx.reqCtx.Err(); err != nil {
			ctx.interrupt(fmt.Errorf("opt: search cancelled: %w", err))
		}
	}
}

// checkBudgetPar is the parallel-run budget checkpoint: the worker shell
// publishes its private counter deltas to the shared meters, then compares
// the run-wide totals against the budget. The request context is polled on
// the shell's own countdown, so polls stay amortized per worker.
func (ctx *Context) checkBudgetPar(p *parRun) {
	if ctx.stopCause != nil || p.stop.Load() {
		return
	}
	b := ctx.Opts.Budget
	if b.MaxCostEvals > 0 {
		if d := ctx.Count.CostEvals - ctx.parEvalMark; d > 0 {
			p.evals.Add(int64(d))
			ctx.parEvalMark = ctx.Count.CostEvals
		}
		if total := p.evalsBase + int(p.evals.Load()); total >= b.MaxCostEvals {
			ctx.interrupt(fmt.Errorf("%w: %d cost evaluations (budget %d)", ErrBudgetExhausted, total, b.MaxCostEvals))
			return
		}
	}
	if b.MaxSubsets > 0 {
		if d := ctx.Count.Subsets - ctx.parSubsetMark; d > 0 {
			p.subsets.Add(int64(d))
			ctx.parSubsetMark = ctx.Count.Subsets
		}
		if total := p.subsetsBase + int(p.subsets.Load()); total >= b.MaxSubsets {
			ctx.interrupt(fmt.Errorf("%w: %d subsets (budget %d)", ErrBudgetExhausted, total, b.MaxSubsets))
			return
		}
	}
	ctx.pollCountdown--
	if ctx.pollCountdown > 0 {
		return
	}
	ctx.pollCountdown = ctxPollInterval
	if ctx.reqCtx != nil {
		if err := ctx.reqCtx.Err(); err != nil {
			ctx.interrupt(fmt.Errorf("opt: search cancelled: %w", err))
		}
	}
}

// visitSubset is the per-lattice-node checkpoint: it counts the subset,
// trips the budget meters, and reports whether the search may continue.
func (ctx *Context) visitSubset() bool {
	if ctx.stopped() {
		return false
	}
	ctx.Count.Subsets++
	ctx.checkBudget()
	return !ctx.stopped()
}

// guardCost counts and neutralizes non-finite step costs: a NaN or ±Inf
// from a coster becomes +Inf, which loses every DP comparison instead of
// silently poisoning it (NaN compares false with everything, so a NaN
// candidate could otherwise block a subset from ever being solved).
func (ctx *Context) guardCost(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		ctx.Count.NonFiniteCosts++
		return math.Inf(1)
	}
	return v
}

// priceJoin prices one join step through the engine's pricer, wrapped with
// the fail-soft machinery: the fault-injection site, the non-finite guard,
// and the budget/cancellation checkpoint.
func (ctx *Context) priceJoin(pr stepPricer, m cost.Method, left, right plan.Node, s query.RelSet, phase int) float64 {
	var t0 time.Time
	if ctx.metrics != nil {
		t0 = time.Now()
	}
	var v float64
	switch faultinject.Check(faultinject.JoinCost) {
	case faultinject.KindNaN:
		v = math.NaN()
	case faultinject.KindInf:
		v = math.Inf(1)
	default:
		v = pr.joinStep(m, left, right, s, phase)
	}
	v = ctx.guardCost(v)
	if ctx.metrics != nil {
		ctx.costingNanos += time.Since(t0).Nanoseconds()
	}
	ctx.checkBudget()
	return v
}

// priceSort prices the final ORDER BY sort with the same guards as
// priceJoin.
func (ctx *Context) priceSort(pr stepPricer, input plan.Node, phase int) float64 {
	var t0 time.Time
	if ctx.metrics != nil {
		t0 = time.Now()
	}
	var v float64
	switch faultinject.Check(faultinject.SortCost) {
	case faultinject.KindNaN:
		v = math.NaN()
	case faultinject.KindInf:
		v = math.Inf(1)
	default:
		v = pr.sortStep(input, phase)
	}
	v = ctx.guardCost(v)
	if ctx.metrics != nil {
		ctx.costingNanos += time.Since(t0).Nanoseconds()
	}
	ctx.checkBudget()
	return v
}

// degradeReason maps the run's stop cause to the reported reason.
func (ctx *Context) degradeReason() DegradeReason {
	var pe panicError
	switch {
	case ctx.stopCause == nil:
		return DegradeNone
	case errors.As(ctx.stopCause, &pe):
		return DegradePanic
	case errors.Is(ctx.stopCause, ErrBudgetExhausted):
		return DegradeBudget
	default:
		return DegradeDeadline
	}
}

// OptimizeCtx runs the configured search under the request context and the
// session's Budget. It implements the anytime contract: when the search is
// interrupted (deadline, cancellation, budget exhaustion) or panics, the
// engine degrades down the ladder and still returns a valid finished plan,
// flagged with Degraded/Reason/Rung — an error is returned only for
// genuinely unplannable inputs.
//
// On the way out the run is flushed to Options.Metrics and, when tracing is
// enabled, the decision trace is snapshotted onto the Result — every return
// path of the inner optimization shares this epilogue.
func (o *Optimizer) OptimizeCtx(rc context.Context) (*Result, error) {
	res, err := o.optimizeCtxInner(rc)
	if res != nil {
		res.Enumeration = o.ctx.enumEff
	}
	o.stampTier(res)
	o.ctx.flushMetrics()
	o.ctx.attachTrace(res)
	return res, err
}

func (o *Optimizer) optimizeCtxInner(rc context.Context) (*Result, error) {
	o.tier = tierState{}
	o.ctx.beginRun(rc)
	if o.ctx.Opts.Tier != TierDP {
		if res, served := o.tierGate(); served {
			return res, nil
		}
	}
	res, err := o.runPrimary()

	// Clean completion. A run that had to discard poisoned candidates is
	// flagged: the plan is valid but possibly suboptimal.
	if err == nil && !o.ctx.stopped() {
		if o.ctx.sawNonFinite() {
			o.markDegraded(res, DegradeNonFinite, RungFull)
		}
		return res, nil
	}

	if err != nil && !o.ctx.stopped() {
		// A genuine planning failure (empty query, no access path,
		// disconnected lattice...) — but if this run poisoned evaluations,
		// the failure is the coster's, not the query's.
		if o.ctx.sawNonFinite() {
			return nil, fmt.Errorf("%w (%v)", ErrNonFinite, err)
		}
		return nil, err
	}

	// Interrupted: descend the ladder.
	reason := o.ctx.degradeReason()
	if res != nil && res.Plan != nil {
		o.markDegraded(res, reason, RungPartial)
		return res, nil
	}
	fb, ferr := o.fallbackGuarded()
	if ferr != nil {
		return nil, fmt.Errorf("%w (fallback also failed: %v)", causeOrBudget(o.ctx.stopCause), ferr)
	}
	o.markDegraded(fb, reason, RungGreedy)
	return fb, nil
}

// causeOrBudget returns the stop cause, defaulting to ErrBudgetExhausted.
func causeOrBudget(cause error) error {
	if cause != nil {
		return cause
	}
	return ErrBudgetExhausted
}

// markDegraded flags a result and counts the degradation event.
func (o *Optimizer) markDegraded(res *Result, reason DegradeReason, rung string) {
	res.Degraded = true
	res.Reason = reason
	res.Rung = rung
	o.ctx.Count.Degradations++
	res.Count = o.ctx.snapshotCount()
}

// runPrimary executes the configured space's search under a recover, so a
// panicking coster (or a latent invariant failure in stats/plan code deep
// inside the DP) surfaces as an interruption instead of escaping the
// engine.
func (o *Optimizer) runPrimary() (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			o.ctx.Count.PanicsRecovered++
			pe := panicError{val: p}
			o.ctx.interrupt(pe)
			res, err = nil, pe
		}
	}()
	switch o.cfg.Space {
	case SpaceBushy:
		if w := o.workerCount(); w > 1 {
			return o.runBushyParallel(w)
		}
		return o.runBushy()
	case SpacePipelined:
		// The pipelined space's phase assignment depends on the methods below
		// each join, so it is searched by exhaustive enumeration and always
		// runs sequentially.
		return o.runPipelined()
	default:
		if w := o.workerCount(); w > 1 {
			return o.runLeftDeepParallel(w)
		}
		return o.runLeftDeep()
	}
}

// fallbackGuarded runs the terminal ladder rung under its own recover: the
// fallback prices steps directly with the classical cost formulas (it never
// re-enters the configured pricer, whose misbehavior may be why we are
// here), but it must still never let a panic escape.
func (o *Optimizer) fallbackGuarded() (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			o.ctx.Count.PanicsRecovered++
			res, err = nil, panicError{val: p}
		}
	}()
	return o.runGreedy()
}

// fallbackMem is the single representative memory value the greedy rung
// prices at: the mean of the coster's (initial) distribution — exactly the
// value the classical LSC optimizer would have assumed.
func (o *Optimizer) fallbackMem() float64 {
	switch c := o.cfg.Coster.(type) {
	case FixedParams:
		return c.Mem
	case StaticParams:
		return c.Mem.Mean()
	case PhasedParams:
		return c.Phases[0].Mean()
	case MarkovParams:
		return c.Initial.Mean()
	case MultiParams:
		return c.Mem.Mean()
	default:
		return 1
	}
}

// runGreedy is the guaranteed-fallback rung: greedy join ordering at the
// distribution mean, seeded with the deepest partial result the interrupted
// DP left behind (the "left-deep completion" of whatever was already paid
// for). Its work is O(n²·|methods|) — negligible next to any budget that
// could have been exhausted — and it bypasses the configured pricer and the
// fault-injection sites, so it succeeds even when the coster panics or
// returns garbage.
func (o *Optimizer) runGreedy() (*Result, error) {
	ctx := o.ctx
	n := ctx.Q.NumRels()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty query")
	}
	mem := o.fallbackMem()
	if math.IsNaN(mem) || math.IsInf(mem, 0) || mem <= 0 {
		mem = 1
	}
	if n == 1 {
		best := ctx.BestScan(0)
		finished, added := ctx.FinishPlan(best)
		total := best.AccessCost()
		if added {
			total += cost.SortCost(best.OutPages(), mem)
		}
		return &Result{Plan: finished, Cost: total, Count: ctx.snapshotCount()}, nil
	}
	// Greedy completion quality depends heavily on the seed: a single
	// cheapest-scan opening (or a salvage base picked by depth) can walk
	// into a corner of the join graph whose completion is many orders of
	// magnitude off. So the rung runs a small seed portfolio — every start
	// relation plus whatever the interrupted DP left behind — and keeps the
	// cheapest completed plan. Each completion is O(n²·|methods|), so the
	// whole portfolio stays O(n³·|methods|): negligible next to any budget
	// that could have been exhausted.
	seeds := make([]greedySeed, 0, n+2)
	for i := 0; i < n; i++ {
		s := ctx.BestScan(i)
		seeds = append(seeds, greedySeed{s, query.NewRelSet(i), s.AccessCost()})
	}
	seeds = append(seeds, o.salvageSeeds(mem)...)
	var node plan.Node
	total := math.Inf(1)
	var lastErr error
	for _, sd := range seeds {
		ext, sum, err := ctx.greedyExtend(sd.node, sd.set, mem)
		if err != nil {
			lastErr = err
			continue
		}
		if c := sd.cost + sum; c < total {
			node, total = ext, c
		}
	}
	if node == nil {
		return nil, lastErr
	}
	finished, added := ctx.FinishPlan(node)
	if added {
		total += cost.SortCost(node.OutPages(), mem)
	}
	return &Result{Plan: finished, Cost: total, Count: ctx.snapshotCount()}, nil
}

// greedySeed is one starting point for the greedy fallback: a partial plan,
// the relations it covers, and its cost re-priced at the fallback memory.
type greedySeed struct {
	node plan.Node
	set  query.RelSet
	cost float64
}

// salvageSeeds extracts up to two greedy seeds from whatever the interrupted
// run had already solved: the deepest subset (most paid-for work preserved)
// and the cheapest subset of size ≥ 2 (safest base). Both the single-best DP
// table and Algorithm B's top-c lists are inspected; entries of size 1 are
// skipped (the scratch portfolio already covers every single-relation
// opening).
func (o *Optimizer) salvageSeeds(mem float64) []greedySeed {
	var deepest, cheapest greedySeed
	deepestLen := 1
	deepest.cost = math.Inf(1)
	cheapest.cost = math.Inf(1)
	consider := func(s query.RelSet, node plan.Node) {
		if node == nil {
			return
		}
		l := s.Len()
		if l < 2 {
			return
		}
		c := plan.Cost(node, mem)
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return
		}
		if l > deepestLen || (l == deepestLen && c < deepest.cost) {
			deepest, deepestLen = greedySeed{node, s, c}, l
		}
		if c < cheapest.cost {
			cheapest = greedySeed{node, s, c}
		}
	}
	// Both the single-best DP table and the top-c lists are inspected via
	// their dense-or-sparse forms; a zero-value table (the run never built
	// one, e.g. the pipelined space) yields nothing.
	o.dpt.forEach(func(s query.RelSet, e dpEntry) { consider(s, e.node) })
	o.topt.forEach(func(s query.RelSet, l []topEntry) { consider(s, l[0].node) })
	var seeds []greedySeed
	if deepest.node != nil {
		seeds = append(seeds, deepest)
	}
	if cheapest.node != nil && cheapest.set != deepest.set {
		seeds = append(seeds, cheapest)
	}
	return seeds
}

// greedyExtend grows a partial left-deep plan to cover every relation,
// at each step joining in the (relation, method) pair of least specific
// cost at mem. The cross-product policy is respected; extensionAllowed
// guarantees at least one admissible extension whenever relations remain.
func (ctx *Context) greedyExtend(cur plan.Node, used query.RelSet, mem float64) (plan.Node, float64, error) {
	n := ctx.Q.NumRels()
	total := 0.0
	for used.Len() < n {
		bestJ, bestM, bestC := -1, cost.Method(0), math.Inf(1)
		for j := 0; j < n; j++ {
			if used.Has(j) || !ctx.extensionAllowed(used, j) {
				continue
			}
			scan := ctx.BestScan(j)
			for _, m := range ctx.Opts.Methods {
				c := scan.AccessCost() + cost.JoinCost(m, cur.OutPages(), scan.OutPages(), mem)
				if math.IsNaN(c) {
					continue
				}
				if c < bestC || bestJ < 0 {
					bestJ, bestM, bestC = j, m, c
				}
			}
		}
		if bestJ < 0 {
			return nil, 0, fmt.Errorf("opt: greedy fallback found no admissible extension of %v", used)
		}
		s := used.Add(bestJ)
		cur = ctx.NewJoin(cur, ctx.BestScan(bestJ), bestM, s, bestJ)
		used = s
		total += bestC
	}
	return cur, total, nil
}
