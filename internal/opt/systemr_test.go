package opt

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestTheorem21 verifies that the System R dynamic program returns exactly
// the least-cost left-deep plan for a fixed parameter setting, by
// comparison against exhaustive enumeration (paper Theorem 2.1).
func TestTheorem21(t *testing.T) {
	shapes := []workload.Topology{workload.Chain, workload.Star, workload.Clique}
	for seed := int64(0); seed < 12; seed++ {
		shape := shapes[seed%3]
		orderBy := seed%2 == 0
		cat, q := randInstance(t, seed, 4, shape, orderBy)
		for _, mem := range []float64{20, 300, 5000} {
			dp, err := SystemR(cat, q, Options{}, mem)
			if err != nil {
				t.Fatalf("seed %d mem %v: SystemR: %v", seed, mem, err)
			}
			ex, err := ExhaustiveLSC(cat, q, Options{}, mem)
			if err != nil {
				t.Fatalf("seed %d mem %v: exhaustive: %v", seed, mem, err)
			}
			if relDiff(dp.Cost, ex.Cost) > costTol {
				t.Errorf("seed %d shape %v mem %v: DP cost %v != exhaustive %v\nDP:\n%s\nEX:\n%s",
					seed, shape, mem, dp.Cost, ex.Cost, plan.Explain(dp.Plan), plan.Explain(ex.Plan))
			}
			// The DP's reported cost must equal the plan's actual cost.
			if actual := plan.Cost(dp.Plan, mem); relDiff(dp.Cost, actual) > costTol {
				t.Errorf("seed %d mem %v: reported %v but plan costs %v", seed, mem, dp.Cost, actual)
			}
		}
	}
}

// TestTheorem21WithCrossProductHeuristic repeats the check with the
// AvoidCrossProducts heuristic on: DP and exhaustive still agree because
// they share the policy.
func TestTheorem21WithCrossProductHeuristic(t *testing.T) {
	opts := Options{AvoidCrossProducts: true}
	for seed := int64(0); seed < 6; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Chain, true)
		dp, err := SystemR(cat, q, opts, 500)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ex, err := ExhaustiveLSC(cat, q, opts, 500)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if relDiff(dp.Cost, ex.Cost) > costTol {
			t.Errorf("seed %d: DP %v != exhaustive %v", seed, dp.Cost, ex.Cost)
		}
	}
}

// TestSystemRExample11 reproduces the LSC half of Example 1.1: at the modal
// (2000) and mean (1740) memory values the optimizer picks Plan 1
// (sort-merge, free order), while at 700 pages it picks Plan 2 (Grace hash
// + explicit sort).
func TestSystemRExample11(t *testing.T) {
	cat, q, _ := workload.Example11()
	for _, mem := range []float64{2000, 1740} {
		res, err := SystemR(cat, q, Options{}, mem)
		if err != nil {
			t.Fatal(err)
		}
		j := rootJoin(t, res.Plan)
		if j.Method != cost.SortMerge {
			t.Errorf("at mem=%v: method %v, want sort-merge\n%s", mem, j.Method, plan.Explain(res.Plan))
		}
		if _, isSort := res.Plan.(*plan.Sort); isSort {
			t.Errorf("at mem=%v: explicit sort on top of sort-merge\n%s", mem, plan.Explain(res.Plan))
		}
		if want := 1_400_000 + 2*1_400_000.0; res.Cost != want {
			t.Errorf("at mem=%v: cost %v, want %v", mem, res.Cost, want)
		}
	}
	res, err := SystemR(cat, q, Options{}, 700)
	if err != nil {
		t.Fatal(err)
	}
	j := rootJoin(t, res.Plan)
	if j.Method != cost.GraceHash {
		t.Errorf("at mem=700: method %v, want grace-hash\n%s", j.Method, plan.Explain(res.Plan))
	}
	if want := 1_400_000 + 2*1_400_000 + 6000.0; res.Cost != want {
		t.Errorf("at mem=700: cost %v, want %v", res.Cost, want)
	}
}

// rootJoin digs the topmost join out of a finished plan.
func rootJoin(t *testing.T, n plan.Node) *plan.Join {
	t.Helper()
	for {
		switch v := n.(type) {
		case *plan.Join:
			return v
		case *plan.Sort:
			n = v.Input
		default:
			t.Fatalf("no join in plan:\n%s", plan.Explain(n))
		}
	}
}

func TestSystemRSingleTable(t *testing.T) {
	cat, q := randInstance(t, 3, 1, workload.Chain, false)
	res, err := SystemR(cat, q, Options{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Plan.(*plan.Scan); !ok {
		t.Errorf("single-table plan is %T", res.Plan)
	}
	if res.Cost <= 0 {
		t.Errorf("cost %v", res.Cost)
	}
}

func TestSystemRSingleTableOrderByUsesIndex(t *testing.T) {
	// A table with a clustered index on the ORDER BY column: the index scan
	// delivers the order for free and must beat seq-scan + sort when the
	// sort would spill.
	cat, q, _ := workload.Example11()
	tabA := cat.MustTable("A")
	tabA.Indexes = append(tabA.Indexes, &catalog.Index{
		Name: "A_k", Column: "k", Clustered: true, Height: 3,
	})
	qs := *q
	qs.Tables = []string{"A"}
	qs.Joins = nil
	res, err := SystemR(cat, &qs, Options{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	scan, ok := res.Plan.(*plan.Scan)
	if !ok {
		t.Fatalf("plan is %T:\n%s", res.Plan, plan.Explain(res.Plan))
	}
	if scan.Method != plan.IndexScan {
		t.Errorf("method %v, want index-scan (order for free)", scan.Method)
	}
}

func TestSystemRCounters(t *testing.T) {
	cat, q := randInstance(t, 5, 4, workload.Clique, false)
	res, err := SystemR(cat, q, Options{}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count.CostEvals == 0 || res.Count.PlansBuilt == 0 {
		t.Errorf("counters not incremented: %+v", res.Count)
	}
}

// TestAlgorithmCPointDistEqualsSystemR: the one-bucket special case of LEC
// optimization is the traditional algorithm (paper §4).
func TestAlgorithmCPointDistEqualsSystemR(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Chain, seed%2 == 0)
		for _, mem := range []float64{50, 800} {
			lsc, err := SystemR(cat, q, Options{}, mem)
			if err != nil {
				t.Fatal(err)
			}
			lec, err := AlgorithmC(cat, q, Options{}, stats.Point(mem))
			if err != nil {
				t.Fatal(err)
			}
			if relDiff(lsc.Cost, lec.Cost) > costTol {
				t.Errorf("seed %d mem %v: SystemR %v != AlgorithmC(point) %v", seed, mem, lsc.Cost, lec.Cost)
			}
			if lsc.Plan.Key() != lec.Plan.Key() {
				t.Errorf("seed %d mem %v: different plans:\n%s\nvs\n%s",
					seed, mem, plan.Explain(lsc.Plan), plan.Explain(lec.Plan))
			}
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if len(o.methods()) != len(cost.Methods()) {
		t.Error("default methods not all")
	}
	if o.budget() != DefaultBudget || o.topC() != DefaultTopC {
		t.Error("defaults wrong")
	}
	o = Options{Methods: []cost.Method{cost.SortMerge}, RebucketBudget: 9, TopC: 7}
	if len(o.methods()) != 1 || o.budget() != 9 || o.topC() != 7 {
		t.Error("explicit options ignored")
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{CostEvals: 1, PlansBuilt: 2, MergeCombos: 3, MaxMergeCombos: 4}
	b := Counters{CostEvals: 10, PlansBuilt: 20, MergeCombos: 30, MaxMergeCombos: 2}
	a.Add(b)
	if a.CostEvals != 11 || a.PlansBuilt != 22 || a.MergeCombos != 33 || a.MaxMergeCombos != 4 {
		t.Errorf("Add result %+v", a)
	}
}

func TestNoPlanForInvalidQuery(t *testing.T) {
	cat, q := randInstance(t, 1, 3, workload.Chain, false)
	q.Tables = append(q.Tables, "ghost")
	if _, err := SystemR(cat, q, Options{}, 100); err == nil {
		t.Error("SystemR accepted invalid query")
	}
	if _, err := AlgorithmC(cat, q, Options{}, stats.Point(100)); err == nil {
		t.Error("AlgorithmC accepted invalid query")
	}
}
