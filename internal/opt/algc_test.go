package opt

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestTheorem33 verifies Algorithm C against exhaustive enumeration of all
// left-deep plans under the exact expected-cost objective: "Algorithm C
// gives us the LEC left-deep plan."
func TestTheorem33(t *testing.T) {
	shapes := []workload.Topology{workload.Chain, workload.Star, workload.Clique}
	for seed := int64(0); seed < 15; seed++ {
		cat, q := randInstance(t, seed, 4, shapes[seed%3], seed%2 == 0)
		dm := randMemDist3(seed + 1000)
		lec, err := AlgorithmC(cat, q, Options{}, dm)
		if err != nil {
			t.Fatalf("seed %d: AlgorithmC: %v", seed, err)
		}
		ex, err := ExhaustiveLEC(cat, q, Options{}, dm)
		if err != nil {
			t.Fatalf("seed %d: exhaustive: %v", seed, err)
		}
		if relDiff(lec.Cost, ex.Cost) > costTol {
			t.Errorf("seed %d: AlgorithmC %v != exhaustive LEC %v\nC:\n%s\nEX:\n%s",
				seed, lec.Cost, ex.Cost, plan.Explain(lec.Plan), plan.Explain(ex.Plan))
		}
		// Reported expected cost equals the plan's actual expected cost.
		if actual := plan.ExpCost(lec.Plan, dm); relDiff(lec.Cost, actual) > costTol {
			t.Errorf("seed %d: reported %v, plan's E[cost] %v", seed, lec.Cost, actual)
		}
	}
}

// TestTheorem33FiveRelations runs one larger instance to exercise deeper
// lattices.
func TestTheorem33FiveRelations(t *testing.T) {
	cat, q := randInstance(t, 42, 5, workload.Chain, true)
	dm := randMemDist3(99)
	lec, err := AlgorithmC(cat, q, Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := ExhaustiveLEC(cat, q, Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(lec.Cost, ex.Cost) > costTol {
		t.Errorf("AlgorithmC %v != exhaustive %v", lec.Cost, ex.Cost)
	}
}

// TestAlgorithmCExample11 is the paper's headline example end to end:
// the LEC optimizer must pick Plan 2 (Grace hash + sort) and beat the LSC
// plan's expected cost by the predicted margin.
func TestAlgorithmCExample11(t *testing.T) {
	cat, q, dm := workload.Example11()
	lec, err := AlgorithmC(cat, q, Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	j := rootJoin(t, lec.Plan)
	if j.Method != cost.GraceHash {
		t.Fatalf("LEC method %v, want grace-hash\n%s", j.Method, plan.Explain(lec.Plan))
	}
	if _, isSort := lec.Plan.(*plan.Sort); !isSort {
		t.Errorf("LEC plan lacks the explicit sort\n%s", plan.Explain(lec.Plan))
	}
	// E[plan2] = scans + 2 passes + sort = 1.4M + 2.8M + 6000.
	if want := 4_206_000.0; relDiff(lec.Cost, want) > costTol {
		t.Errorf("E[LEC] = %v, want %v", lec.Cost, want)
	}
	// LSC at mode: E = 1.4M + 0.8·2.8M + 0.2·5.6M = 4.76M.
	lsc, err := LSCPlan(cat, q, Options{}, dm, true)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4_760_000.0; relDiff(lsc.Cost, want) > costTol {
		t.Errorf("E[LSC] = %v, want %v", lsc.Cost, want)
	}
	if lec.Cost >= lsc.Cost {
		t.Errorf("LEC %v not better than LSC %v", lec.Cost, lsc.Cost)
	}
}

// TestLECNeverWorseThanLSC is the paper's contribution 1: "LEC plans ...
// are guaranteed to be at least as good as (and typically better than) any
// specific LSC plan."
func TestLECNeverWorseThanLSC(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Chain, seed%2 == 0)
		dm := randMemDist3(seed + 7)
		lec, err := AlgorithmC(cat, q, Options{}, dm)
		if err != nil {
			t.Fatal(err)
		}
		for _, useMode := range []bool{false, true} {
			lsc, err := LSCPlan(cat, q, Options{}, dm, useMode)
			if err != nil {
				t.Fatal(err)
			}
			if lec.Cost > lsc.Cost*(1+costTol) {
				t.Errorf("seed %d (mode=%v): E[LEC] %v > E[LSC] %v", seed, useMode, lec.Cost, lsc.Cost)
			}
		}
	}
}

// TestTheorem34 verifies the dynamic-parameter variant: with memory
// evolving between phases under a Markov chain, Algorithm C with per-phase
// distributions equals exhaustive enumeration under the phased objective.
func TestTheorem34(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Chain, seed%2 == 1)
		rng := rand.New(rand.NewSource(seed + 500))
		chain, err := workload.MemoryWalk(20, 5000, 4, 0.2+0.3*rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		initial := stats.Point(chain.States()[rng.Intn(chain.NumStates())])
		dyn, err := AlgorithmCDynamic(cat, q, Options{}, chain, initial)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		phases := PhaseDistsFor(q, chain, initial)
		ex, err := ExhaustiveLECPhased(cat, q, Options{}, phases)
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(dyn.Cost, ex.Cost) > costTol {
			t.Errorf("seed %d: dynamic C %v != exhaustive %v", seed, dyn.Cost, ex.Cost)
		}
		if actual := plan.ExpCostPhased(dyn.Plan, phases); relDiff(dyn.Cost, actual) > costTol {
			t.Errorf("seed %d: reported %v, actual %v", seed, dyn.Cost, actual)
		}
	}
}

// TestDynamicWithIdentityChainEqualsStatic: a chain that never moves is the
// static case.
func TestDynamicWithIdentityChainEqualsStatic(t *testing.T) {
	cat, q := randInstance(t, 11, 4, workload.Star, true)
	dm := randMemDist3(123)
	chain := stats.IdentityChain(dm.Support())
	static, err := AlgorithmC(cat, q, Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := AlgorithmCDynamic(cat, q, Options{}, chain, dm)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(static.Cost, dyn.Cost) > costTol {
		t.Errorf("static %v != identity-chain dynamic %v", static.Cost, dyn.Cost)
	}
	if static.Plan.Key() != dyn.Plan.Key() {
		t.Errorf("plans differ:\n%s\nvs\n%s", plan.Explain(static.Plan), plan.Explain(dyn.Plan))
	}
}

// TestDynamicMemoryChangesPlanChoice demonstrates why dynamic modelling
// matters: a memory trajectory that starts rich but decays makes late
// expensive joins risky, which the phase-aware optimizer can price but the
// static one cannot. We assert the two optimizers disagree on expected cost
// for at least one instance (they usually agree on easy ones).
func TestDynamicMemoryChangesPlanChoice(t *testing.T) {
	found := false
	for seed := int64(0); seed < 40 && !found; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Chain, false)
		// Strongly downward-drifting walk.
		chain, err := stats.RandomWalkChain([]float64{20, 200, 2000}, 0.6, 0.0)
		if err != nil {
			t.Fatal(err)
		}
		initial := stats.Point(2000)
		phases := PhaseDistsFor(q, chain, initial)
		dyn, err := AlgorithmCDynamic(cat, q, Options{}, chain, initial)
		if err != nil {
			t.Fatal(err)
		}
		static, err := AlgorithmC(cat, q, Options{}, initial)
		if err != nil {
			t.Fatal(err)
		}
		staticUnderPhases := plan.ExpCostPhased(static.Plan, phases)
		if staticUnderPhases > dyn.Cost*(1+1e-9) {
			found = true
		}
	}
	if !found {
		t.Error("no instance where phase-aware optimization beat the static plan under decaying memory")
	}
}
