package opt

import (
	"context"
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// groupRowsPerPage is the density of (key, count) aggregate output rows.
const groupRowsPerPage = 256

// OptimizeWithAggregation handles GROUP BY blocks: the SPJ core is
// optimized with Algorithm B's order-diverse candidate pool, then each
// candidate is finished with the aggregate method of least expected cost —
// hash aggregation (cheap while the group table fits memory) versus sort
// aggregation (free when the join output already carries the group key's
// order, and itself order-producing, which serves an ORDER BY on the group
// key). This is the aggregate analogue of Example 1.1's sort-vs-hash trade
// and exercises the paper's "sizes of groups" parameter (§1).
// The candidate pool covers the SPJ core, generated twice: once bare (cheap
// unordered inputs for hash aggregation) and once targeting the group key's
// order (sort-merge-last joins, order-providing index scans, or explicit
// sorts — the inputs that make sort aggregation free). The union is
// deduplicated by plan key.
func OptimizeWithAggregation(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	return OptimizeWithAggregationCtx(context.Background(), cat, q, opts, dm)
}

// finishAggregate wraps a join plan with the aggregate (and an ORDER BY
// sort over the aggregate output when still needed).
func finishAggregate(q *query.SPJ, cand plan.Node, m plan.AggMethod, groups, pages float64) plan.Node {
	agg := &plan.Aggregate{
		Input: cand, GroupKey: *q.GroupBy, Method: m,
		Groups: groups, Pages: pages,
	}
	var out plan.Node = agg
	if q.OrderBy != nil && !plan.SatisfiesOrder(out, *q.OrderBy) {
		out = &plan.Sort{Input: out, Key_: *q.OrderBy}
	}
	return out
}

// groupEstimates derives the number of groups (capped by the join result's
// cardinality) and the aggregate output's page count.
func groupEstimates(cat *catalog.Catalog, q *query.SPJ) (groups, pages float64, err error) {
	tab, err := cat.Table(q.BaseTable(q.GroupBy.Table))
	if err != nil {
		return 0, 0, err
	}
	col := tab.Column(q.GroupBy.Column)
	if col == nil {
		return 0, 0, fmt.Errorf("opt: unknown group column %s", q.GroupBy)
	}
	distinct := float64(col.Distinct)
	if distinct <= 0 {
		distinct = 10
	}
	core := *q
	core.OrderBy = nil
	core.GroupBy = nil
	ctx, err := NewContext(cat, &core, Options{})
	if err != nil {
		return 0, 0, err
	}
	resultRows := ctx.SubsetRows(query.FullSet(q.NumRels()))
	groups = math.Min(distinct, resultRows)
	if groups < 1 {
		groups = 1
	}
	pages = math.Ceil(groups / groupRowsPerPage)
	return groups, pages, nil
}

// ExhaustiveWithAggregation is the brute-force reference: every left-deep
// SPJ plan × both aggregate methods.
func ExhaustiveWithAggregation(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	if q.GroupBy == nil {
		return nil, fmt.Errorf("opt: query has no GROUP BY")
	}
	if err := q.Validate(cat); err != nil {
		return nil, err
	}
	core := *q
	core.OrderBy = nil
	core.GroupBy = nil
	plans, err := EnumeratePlans(cat, &core, opts)
	if err != nil {
		return nil, err
	}
	ordered := core
	ordered.OrderBy = q.GroupBy
	orderedPlans, err := EnumeratePlans(cat, &ordered, opts)
	if err != nil {
		return nil, err
	}
	plans = append(plans, orderedPlans...)
	groups, pages, err := groupEstimates(cat, q)
	if err != nil {
		return nil, err
	}
	var best plan.Node
	bestCost := math.Inf(1)
	for _, cand := range plans {
		for _, m := range []plan.AggMethod{plan.HashAgg, plan.SortAgg} {
			finished := finishAggregate(q, cand, m, groups, pages)
			ec := plan.ExpCost(finished, dm)
			if ec < bestCost {
				best, bestCost = finished, ec
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("opt: no aggregate plan found")
	}
	return &Result{Plan: best, Cost: bestCost}, nil
}
