package opt

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// Exhaustive enumerates every finished left-deep plan (all join orders ×
// all join-method assignments, under the same cross-product policy as the
// dynamic programs) and returns the one minimizing the supplied objective.
// It is the ground truth against which Theorems 2.1, 3.3 and 3.4 are
// verified; its cost is O(n!·|methods|^(n-1)), so it is only usable for
// small n.
func Exhaustive(cat *catalog.Catalog, q *query.SPJ, opts Options, objective func(plan.Node) float64) (*Result, error) {
	ctx, err := NewContext(cat, q, opts)
	if err != nil {
		return nil, err
	}
	var best plan.Node
	bestVal := math.Inf(1)
	err = ctx.enumerateLeftDeep(func(finished plan.Node) {
		v := objective(finished)
		if v < bestVal {
			best, bestVal = finished, v
		}
	})
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("opt: exhaustive found no plan")
	}
	return &Result{Plan: best, Cost: bestVal, Count: ctx.Count}, nil
}

// ExhaustiveLSC minimizes Φ at a fixed memory value.
func ExhaustiveLSC(cat *catalog.Catalog, q *query.SPJ, opts Options, mem float64) (*Result, error) {
	return Exhaustive(cat, q, opts, func(p plan.Node) float64 { return plan.Cost(p, mem) })
}

// ExhaustiveLEC minimizes E[Φ] under a static memory distribution — the
// true LEC left-deep plan by brute force.
func ExhaustiveLEC(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	return Exhaustive(cat, q, opts, func(p plan.Node) float64 { return plan.ExpCost(p, dm) })
}

// ExhaustiveLECPhased minimizes E[Φ] when each phase has its own memory
// distribution (the §3.5 dynamic-parameter model).
func ExhaustiveLECPhased(cat *catalog.Catalog, q *query.SPJ, opts Options, phases []*stats.Dist) (*Result, error) {
	return Exhaustive(cat, q, opts, func(p plan.Node) float64 { return plan.ExpCostPhased(p, phases) })
}

// EnumeratePlans returns every finished left-deep plan. Tests use it to
// validate the top-c lists of Algorithm B.
func EnumeratePlans(cat *catalog.Catalog, q *query.SPJ, opts Options) ([]plan.Node, error) {
	ctx, err := NewContext(cat, q, opts)
	if err != nil {
		return nil, err
	}
	var out []plan.Node
	err = ctx.enumerateLeftDeep(func(finished plan.Node) { out = append(out, finished) })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// enumerateLeftDeep calls visit for every finished left-deep plan. Access
// paths are fixed to the cheapest per relation (scan cost is memory-
// independent and scan order cannot survive a join, so no cheaper finished
// plan is excluded), except in the single-relation case where every access
// path competes for the ORDER BY.
func (ctx *Context) enumerateLeftDeep(visit func(plan.Node)) error {
	n := ctx.Q.NumRels()
	if n == 0 {
		return fmt.Errorf("opt: empty query")
	}
	if n == 1 {
		for _, s := range ctx.Scans(0) {
			finished, _ := ctx.FinishPlan(s)
			visit(finished)
		}
		return nil
	}
	var rec func(cur plan.Node, used query.RelSet)
	rec = func(cur plan.Node, used query.RelSet) {
		if ctx.stopped() {
			return
		}
		if used.Len() == n {
			finished, _ := ctx.FinishPlan(cur)
			visit(finished)
			return
		}
		for j := 0; j < n; j++ {
			if used.Has(j) || !ctx.extensionAllowed(used, j) {
				continue
			}
			scan := ctx.BestScan(j)
			s := used.Add(j)
			for _, m := range ctx.Opts.Methods {
				rec(ctx.NewJoin(cur, scan, m, s, j), s)
			}
		}
	}
	for i := 0; i < n; i++ {
		rec(ctx.BestScan(i), query.NewRelSet(i))
	}
	return nil
}

// ExhaustiveBushy enumerates every bushy join tree (all binary tree shapes
// × method assignments) and minimizes the objective. It exists to quantify
// what the left-deep heuristic gives up (paper §2.2 heuristic 2 restricts
// System R to left-deep plans). Exponentially more expensive than the
// left-deep enumeration; keep n ≤ 6.
func ExhaustiveBushy(cat *catalog.Catalog, q *query.SPJ, opts Options, objective func(plan.Node) float64) (*Result, error) {
	ctx, err := NewContext(cat, q, opts)
	if err != nil {
		return nil, err
	}
	n := ctx.Q.NumRels()
	if n == 1 {
		return Exhaustive(cat, q, opts, objective)
	}
	// trees[s] lists every bushy tree computing subset s.
	trees := make(map[query.RelSet][]plan.Node, 1<<uint(n))
	for i := 0; i < n; i++ {
		trees[query.NewRelSet(i)] = []plan.Node{ctx.BestScan(i)}
	}
	for d := 2; d <= n; d++ {
		query.SubsetsOfSize(n, d, func(s query.RelSet) {
			var out []plan.Node
			// Enumerate unordered partitions s = l ∪ r by iterating proper
			// non-empty sub-bitmasks; each split appears once with l ⊃ the
			// lowest member to avoid mirrored duplicates, but both operand
			// orders are emitted because join methods are asymmetric.
			lowest := query.NewRelSet(s.Members()[0])
			for l := (s - 1) & s; l != 0; l = (l - 1) & s {
				if !l.Contains(lowest) {
					continue
				}
				r := s &^ l
				for _, lt := range trees[l] {
					for _, rt := range trees[r] {
						for _, m := range ctx.Opts.Methods {
							out = append(out, ctx.newBushyJoin(lt, rt, m, s), ctx.newBushyJoin(rt, lt, m, s))
						}
					}
				}
			}
			trees[s] = out
		})
	}
	var best plan.Node
	bestVal := math.Inf(1)
	for _, t := range trees[query.FullSet(n)] {
		finished, _ := ctx.FinishPlan(t)
		v := objective(finished)
		if v < bestVal {
			best, bestVal = finished, v
		}
	}
	if best == nil {
		return nil, fmt.Errorf("opt: bushy enumeration found no plan")
	}
	return &Result{Plan: best, Cost: bestVal, Count: ctx.Count}, nil
}

// newBushyJoin returns the (interned) join of two arbitrary subtrees.
func (ctx *Context) newBushyJoin(left, right plan.Node, m cost.Method, s query.RelSet) *plan.Join {
	var jn *plan.Join
	var isNew bool
	if p := ctx.par; p != nil {
		// Intern-probe-only lock; see NewJoin. A bushy node's (l, r, method)
		// key determines S = l ∪ r, so one task per level owns each node.
		p.arenaMu.Lock()
		jn, isNew = ctx.arena.Join(left, right, m)
		p.arenaMu.Unlock()
	} else {
		jn, isNew = ctx.arena.Join(left, right, m)
	}
	if isNew {
		ctx.Count.PlansBuilt++
		jn.Preds = ctx.predsBetween(left.Rels(), right.Rels())
		jn.Selectivity = ctx.selBetween(left.Rels(), right.Rels())
		jn.Pages = ctx.SubsetPages(s)
		jn.Rows = ctx.SubsetRows(s)
	}
	return jn
}

// predsBetween returns the join predicates with one side in a and the
// other in b.
func (ctx *Context) predsBetween(a, b query.RelSet) []query.JoinPred {
	var out []query.JoinPred
	for pi, sides := range ctx.predSides {
		li, ri := sides[0], sides[1]
		if li < 0 || ri < 0 {
			continue
		}
		if (a.Has(li) && b.Has(ri)) || (a.Has(ri) && b.Has(li)) {
			out = append(out, ctx.Q.Joins[pi])
		}
	}
	return out
}

// selBetween returns the combined selectivity of predsBetween.
func (ctx *Context) selBetween(a, b query.RelSet) float64 {
	sel := 1.0
	for pi, sides := range ctx.predSides {
		li, ri := sides[0], sides[1]
		if li < 0 || ri < 0 {
			continue
		}
		if (a.Has(li) && b.Has(ri)) || (a.Has(ri) && b.Has(li)) {
			sel *= ctx.Q.Joins[pi].Selectivity
		}
	}
	return sel
}
