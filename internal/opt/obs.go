package opt

import (
	"math"
	"time"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// errMemo accumulates the per-subset equi-depth bucketing error
// contributions (Algorithm D's rebucket spread bounds). A subset's
// contribution depends only on the subset, so keeping the terms per subset
// and summing them in ascending subset order makes the session total
// independent of evaluation schedule — the parallel DP produces the same
// float64 as the sequential one. Storage mirrors floatMemo: sized by the
// enumerator's prediction, lazily allocated on first add.
type errMemo struct {
	sz     memoSizing
	dense  []float64
	sparse *sparseTab[float64]
}

// add accumulates v into subset s's slot. Callers in a parallel run hold the
// run's memo lock (accumBucketErr sits inside the RowDist compute path).
func (m *errMemo) add(s query.RelSet, v float64) {
	if m.dense == nil && m.sparse == nil {
		if m.sz.dense {
			m.dense = make([]float64, 1<<uint(m.sz.n))
		} else {
			m.sparse = newSparseTab[float64](m.sz.predict)
		}
	}
	if m.dense != nil {
		m.dense[s] += v
		return
	}
	*m.sparse.ref(s) += v
}

// total sums the contributions in ascending subset order.
func (m *errMemo) total() float64 {
	t := 0.0
	if m.dense != nil {
		for _, v := range m.dense {
			t += v
		}
		return t
	}
	if m.sparse == nil {
		return 0
	}
	for _, k := range m.sparse.keysSorted() {
		v, _ := m.sparse.get(k)
		t += v
	}
	return t
}

// This file is the engine's observability glue: flushing per-run counter
// deltas and phase timings to the Options.Metrics bundle, snapshotting the
// decision-trace recorder onto Results, and accumulating the equi-depth
// bucketing error bound. The hot paths (dp.go, failsoft.go, algd.go) only
// ever pay a nil check when tracing/metrics are disabled.

// beginObs arms the per-run observability state; called from beginRun.
func (ctx *Context) beginObs() {
	if ctx.metrics == nil {
		return
	}
	ctx.metricsMark = ctx.Count
	ctx.runStart = time.Now()
	ctx.costingNanos = 0
	ctx.bucketingNanos = 0
	ctx.bucketErrMark = ctx.bucketErr.total()
}

// flushMetrics observes one finished run on the metrics bundle: phase
// timings (enumeration is total wall time minus costing; bucketing is the
// subset of costing spent constructing size distributions) and the counter
// deltas since beginRun.
func (ctx *Context) flushMetrics() {
	m := ctx.metrics
	if m == nil {
		return
	}
	total := time.Since(ctx.runStart).Seconds()
	costing := float64(ctx.costingNanos) / 1e9
	bucketing := float64(ctx.bucketingNanos) / 1e9
	enum := total - costing
	if enum < 0 {
		enum = 0
	}
	m.EnumerationSeconds.Observe(enum)
	m.CostingSeconds.Observe(costing)
	m.BucketingSeconds.Observe(bucketing)
	// Per-enumerator phase mirrors — the registry's label-free encoding of
	// the enumerator label on phase timings.
	if ph := m.Phase(ctx.enumEff == EnumConnected); ph != nil {
		ph.EnumerationSeconds.Observe(enum)
		ph.CostingSeconds.Observe(costing)
		ph.BucketingSeconds.Observe(bucketing)
	}
	d, mark := ctx.Count, ctx.metricsMark
	m.Runs.Inc()
	m.CostEvals.Add(float64(d.CostEvals - mark.CostEvals))
	m.Prunes.Add(float64(d.Prunes - mark.Prunes))
	m.MemoHits.Add(float64(d.MemoHits - mark.MemoHits))
	m.Subsets.Add(float64(d.Subsets - mark.Subsets))
	m.SubsetsEnumerated.Add(float64(d.SubsetsEnumerated - mark.SubsetsEnumerated))
	m.SubsetsSkipped.Add(float64(d.SubsetsSkipped - mark.SubsetsSkipped))
	m.JoinSteps.Add(float64(d.JoinSteps - mark.JoinSteps))
	m.NonFiniteCosts.Add(float64(d.NonFiniteCosts - mark.NonFiniteCosts))
	m.Degradations.Add(float64(d.Degradations - mark.Degradations))
	m.PanicsRecovered.Add(float64(d.PanicsRecovered - mark.PanicsRecovered))
	if m.Tier != nil {
		m.Tier.GreedyServed.Add(float64(d.TierGreedyServed - mark.TierGreedyServed))
		m.Tier.Escalations.Add(float64(d.TierEscalations - mark.TierEscalations))
	}
	bErr := ctx.bucketErr.total()
	m.BucketErrBound.Add(bErr - ctx.bucketErrMark)
	// Re-mark so a session that flushes twice (e.g. a bucket loop followed
	// by an aggregation) never double-counts a delta.
	ctx.metricsMark = ctx.Count
	ctx.bucketErrMark = bErr
}

// attachTrace snapshots the recorder onto res, stamping the final outcome.
// No-op when tracing is disabled or there is no result.
func (ctx *Context) attachTrace(res *Result) {
	if ctx.trace == nil || res == nil {
		return
	}
	t := ctx.trace.Snapshot()
	t.FinalCost = res.Cost
	t.Rung = res.Rung
	if res.Degraded {
		t.Reason = res.Reason.String()
	}
	t.BucketErrBound = ctx.bucketErr.total()
	res.Trace = t
}

// accumBucketErr adds the spread bounds of one ResultSizeDist call's input
// rebuckets to subset s's slot of the session's bucketing error memo
// (Algorithm D only — the other costers never rebucket).
func (ctx *Context) accumBucketErr(s query.RelSet, da, db, sel *stats.Dist) {
	budget := ctx.Opts.RebucketBudget
	if budget <= 0 {
		return
	}
	bx, by, bz := stats.RebucketBudget3(budget)
	ctx.bucketErr.add(s, stats.RebucketErrorBound(da, bx)+
		stats.RebucketErrorBound(db, by)+
		stats.RebucketErrorBound(sel, bz))
}

// traceWatch tracks, for one relation subset, the best and second-best
// (joined relation, method) candidates the DP priced. It lives on the stack
// of the subset callback and is only touched when tracing is enabled.
type traceWatch struct {
	count        int
	bestJ, runJ  int
	bestM, runM  cost.Method
	best, runner float64
}

func newTraceWatch() traceWatch {
	return traceWatch{best: math.Inf(1), runner: math.Inf(1)}
}

// consider offers one priced candidate.
func (w *traceWatch) consider(j int, m cost.Method, c float64) {
	w.count++
	if c < w.best {
		w.runJ, w.runM, w.runner = w.bestJ, w.bestM, w.best
		w.bestJ, w.bestM, w.best = j, m, c
	} else if c < w.runner {
		w.runJ, w.runM, w.runner = j, m, c
	}
}

// event renders the watch as a TraceEvent; ok is false when no candidate
// had a finite cost (the subset stayed unsolved).
func (w *traceWatch) event(ctx *Context, s query.RelSet, depth int, root bool) (obs.TraceEvent, bool) {
	if math.IsInf(w.best, 1) {
		return obs.TraceEvent{}, false
	}
	e := obs.TraceEvent{
		Tables:     subsetTables(ctx, s),
		Depth:      depth,
		Join:       ctx.Q.Tables[w.bestJ],
		Method:     w.bestM.String(),
		Cost:       w.best,
		Candidates: w.count,
		Root:       root,
	}
	if !math.IsInf(w.runner, 1) {
		e.RunnerUpJoin = ctx.Q.Tables[w.runJ]
		e.RunnerUpMethod = w.runM.String()
		e.RunnerUpCost = w.runner
		e.Gap = w.runner - w.best
	}
	return e, true
}

// subsetTables lists the subset's relation names in catalog order.
func subsetTables(ctx *Context, s query.RelSet) []string {
	out := make([]string, 0, s.Len())
	s.ForEach(func(i int) { out = append(out, ctx.Q.Tables[i]) })
	return out
}

// traceScans records the depth-1 access-path decisions: per relation, the
// winning scan and the runner-up among its candidate access paths.
func (ctx *Context) traceScans() {
	tr := ctx.trace
	if tr == nil {
		return
	}
	n := ctx.Q.NumRels()
	for i := 0; i < n; i++ {
		scans := ctx.Scans(i)
		e := obs.TraceEvent{
			Tables:     []string{ctx.Q.Tables[i]},
			Depth:      1,
			Join:       ctx.Q.Tables[i],
			Candidates: len(scans),
			Root:       n == 1,
		}
		best, runner := math.Inf(1), math.Inf(1)
		runnerMethod := ""
		for _, s := range scans {
			c := s.AccessCost()
			if c < best {
				runner, runnerMethod = best, e.Method
				best, e.Method = c, scanLabel(s)
			} else if c < runner {
				runner, runnerMethod = c, scanLabel(s)
			}
		}
		e.Cost = best
		if !math.IsInf(runner, 1) {
			e.RunnerUpJoin = e.Join
			e.RunnerUpMethod = runnerMethod
			e.RunnerUpCost = runner
			e.Gap = runner - best
		}
		tr.Add(e)
	}
}

// scanLabel names an access path for the trace: the method, with the index
// name appended for index scans.
func scanLabel(s *plan.Scan) string {
	if s.Index != "" {
		return s.Method.String() + "(" + s.Index + ")"
	}
	return s.Method.String()
}
