package opt

import (
	"time"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// This file implements Algorithm D (paper §3.6): LEC optimization when
// memory, the input sizes, and every predicate selectivity are all modeled
// by (independent) distributions. Per the paper's Figure 1, each lattice
// node carries exactly four distributions no matter how many parameters the
// query has: M (global), |B_j| (the partial result's size), |A_j| (the
// joined relation's size), and σ (the connecting predicates' selectivity).
// The result-size distribution |B_j ⋈ A_j| = |B_j|·|A_j|·σ is computed from
// the latter three and rebucketed to the configured budget (§3.6.3) before
// propagating upward.

// RowDist returns the distribution of the row count of ⋈_{i∈S} A_i.
// Like the point estimates, it is computed canonically per subset —
// independent of join order — which is what keeps the dynamic program
// consistent ("the size of the result is independent of the choice of j";
// we always split off the lowest relation index). Memoized.
func (ctx *Context) RowDist(s query.RelSet) *stats.Dist {
	if p := ctx.par; p != nil {
		p.memoMu.Lock()
		defer p.memoMu.Unlock()
	}
	return ctx.rowDistLocked(s)
}

// rowDistLocked is RowDist's body; in a parallel run the whole recursion
// happens under one hold of the run's memo lock, so a subset's distribution
// is computed exactly once however the workers interleave.
func (ctx *Context) rowDistLocked(s query.RelSet) *stats.Dist {
	if d, ok := ctx.subsetRowDist.get(s); ok {
		ctx.Count.MemoHits++
		return d
	}
	var d *stats.Dist
	if s.Len() == 1 {
		d = ctx.baseRowDist(s.Single())
	} else {
		j := s.Members()[0]
		sj := s.Without(j)
		// The recursive call computes (and memoizes) the sub-subset's
		// distribution before the timed region opens, so nested bucketing
		// time is attributed exactly once.
		left := ctx.rowDistLocked(sj)
		right := ctx.baseRowDist(j)
		var t0 time.Time
		if ctx.metrics != nil {
			t0 = time.Now()
		}
		sel := ctx.Q.StepSelectivityDist(sj, j, ctx.Opts.RebucketBudget)
		d = stats.ResultSizeDist(left, right, sel, ctx.Opts.RebucketBudget)
		if ctx.metrics != nil {
			ctx.bucketingNanos += time.Since(t0).Nanoseconds()
		}
		if ctx.obsWant {
			ctx.accumBucketErr(s, left, right, sel)
		}
	}
	ctx.subsetRowDist.put(s, d)
	return d
}

// baseRowDist is the filtered row-count distribution of relation i: the
// table's size distribution (if any) scaled by row density and local
// selectivity.
func (ctx *Context) baseRowDist(i int) *stats.Dist {
	tab, err := ctx.Cat.Table(ctx.Q.BaseTable(ctx.Q.Tables[i]))
	if err != nil || tab.SizeDist == nil {
		return stats.Point(ctx.baseRows[i])
	}
	scale := tab.RowsPerPage() * ctx.Q.LocalSelectivity(ctx.Q.Tables[i])
	return tab.SizeDist.Scale(scale)
}

// PagesDistOf returns the page-count distribution of the subset's result:
// the row distribution scaled by the (deterministic) pages-per-row of the
// concatenated tuples.
func (ctx *Context) PagesDistOf(s query.RelSet) *stats.Dist {
	if s.Len() == 1 {
		i := s.Single()
		if ctx.baseRows[i] <= 0 {
			return stats.Point(ctx.basePages[i])
		}
		return ctx.RowDist(s).Scale(ctx.basePages[i] / ctx.baseRows[i])
	}
	return ctx.RowDist(s).Scale(ctx.SubsetPPR(s))
}

// distCoster evaluates steps in expectation over memory AND the input-size
// distributions, using the linear-time routines of §3.6.1–3.6.2. It looks
// the operand distributions up by the relations each operand covers, so it
// prices bushy splits exactly as it prices left-deep extensions.
type distCoster struct {
	ctx *Context
	dm  *stats.Dist
	// mt is the session's precomputed memory-side tables for the fused
	// all-methods kernel (see batch.go); built once per compile.
	mt *cost.MemTable
}

func (dc distCoster) joinStep(m cost.Method, left, right plan.Node, _ query.RelSet, _ int) float64 {
	da := dc.ctx.PagesDistOf(left.Rels())
	db := dc.ctx.PagesDistOf(right.Rels())
	dc.ctx.Count.CostEvals += da.Len() + db.Len() + dc.dm.Len()
	return cost.ExpJoinCost3(m, da, db, dc.dm)
}

func (dc distCoster) sortStep(input plan.Node, _ int) float64 {
	dp := dc.ctx.PagesDistOf(input.Rels())
	dc.ctx.Count.CostEvals += dp.Len() * dc.dm.Len()
	return stats.ExpectProduct(dp, dc.dm, cost.SortCost)
}

// AlgorithmD runs the multi-parameter expected-cost dynamic program of
// paper §3.6. Uncertainty sources: dm for memory, each table's SizeDist
// (catalog), and each join predicate's SelDist (query). All are assumed
// independent, the paper's §3.6 default. The returned plan's joins are
// annotated with their propagated size distributions.
func AlgorithmD(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	eng, err := NewOptimizer(cat, q, opts, Config{Coster: MultiParams{Mem: dm}})
	if err != nil {
		return nil, err
	}
	res, err := eng.Optimize()
	if err != nil {
		return nil, err
	}
	annotateSizeDists(eng.ctx, res.Plan)
	return res, nil
}

// annotateSizeDists stores the per-subset size distributions on the plan's
// join nodes (Figure 1's per-node distributions, made visible in EXPLAIN).
func annotateSizeDists(ctx *Context, root plan.Node) {
	plan.Walk(root, func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok {
			j.SizeDist = ctx.PagesDistOf(j.Rels())
		}
	})
}

// EvalAlgDObjective computes the Algorithm D objective — the sum of scan
// costs, expected join costs over (|B_j|, |A_j|, M), and the expected final
// sort cost — for an arbitrary finished left-deep plan, using the same
// canonical per-subset distributions as the dynamic program. Exhaustive
// enumeration with this objective is the ground truth for Algorithm D's DP.
func EvalAlgDObjective(ctx *Context, root plan.Node, dm *stats.Dist) float64 {
	total := 0.0
	plan.Walk(root, func(n plan.Node) {
		switch v := n.(type) {
		case *plan.Scan:
			total += v.AccessCost()
		case *plan.Join:
			da := ctx.PagesDistOf(v.Left.Rels())
			db := ctx.PagesDistOf(v.Right.Rels())
			total += cost.ExpJoinCost3(v.Method, da, db, dm)
		case *plan.Sort:
			if !plan.SatisfiesOrder(v.Input, v.Key_) {
				dp := ctx.PagesDistOf(v.Input.Rels())
				total += stats.ExpectProduct(dp, dm, cost.SortCost)
			}
		}
	})
	return total
}

// ExhaustiveAlgD minimizes the Algorithm D objective by brute force.
func ExhaustiveAlgD(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	ctx, err := NewContext(cat, q, opts)
	if err != nil {
		return nil, err
	}
	return Exhaustive(cat, q, opts, func(p plan.Node) float64 {
		return EvalAlgDObjective(ctx, p, dm)
	})
}
