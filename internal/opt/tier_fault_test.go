package opt

// Fault-matrix tests for the tier/greedy fault-injection site: a broken
// greedy planner — panic, injected non-finite score, or a stall that eats
// the request deadline — must make the tier controller fall through to the
// DP path with the typed "fault" escalation reason, never crash the request
// or serve a corrupted plan. Run under -race via the repo's race target.

import (
	"context"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/workload"
)

// TestTierGreedyPanicFallsThroughToDP: an injected panic inside the greedy
// planner is recovered, counted, and escalated; the DP serves the same plan
// a fault-free TierDP run would.
func TestTierGreedyPanicFallsThroughToDP(t *testing.T) {
	cat, q, dm := workload.Example11()
	faultinject.Enable(faultinject.New(1, faultinject.Rule{
		Site: faultinject.TierGreedy, Kind: faultinject.KindPanic, After: 1, Every: 1,
	}))
	t.Cleanup(faultinject.Disable)

	eng, err := NewOptimizer(cat, q, Options{Tier: TierAuto}, Config{Coster: StaticParams{Mem: dm}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Optimize()
	if err != nil {
		t.Fatalf("panic in greedy tier surfaced as error: %v", err)
	}
	if res.Tier != TierNameDP || res.TierReason != TierEscFault {
		t.Fatalf("tier=%q reason=%q, want dp/%s", res.Tier, res.TierReason, TierEscFault)
	}
	if res.Count.PanicsRecovered == 0 {
		t.Error("recovered panic not counted")
	}
	if res.Count.TierEscalations != 1 {
		t.Errorf("TierEscalations = %d, want 1", res.Count.TierEscalations)
	}
	if err := plan.Validate(res.Plan); err != nil {
		t.Fatalf("DP fallback plan invalid: %v", err)
	}

	faultinject.Disable()
	refEng, err := NewOptimizer(cat, q, Options{}, Config{Coster: StaticParams{Mem: dm}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refEng.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != ref.Cost {
		t.Errorf("post-fault DP cost %v != clean DP cost %v", res.Cost, ref.Cost)
	}
}

// TestTierGreedyNonFiniteFallsThroughToDP: injected NaN/Inf/drop at the
// site mean the greedy score cannot be trusted; the controller escalates
// with the fault reason — even when the tier is pinned to greedy.
func TestTierGreedyNonFiniteFallsThroughToDP(t *testing.T) {
	cat, q, dm := workload.Example11()
	for _, kind := range []faultinject.Kind{faultinject.KindNaN, faultinject.KindInf, faultinject.KindDrop} {
		for _, tier := range []Tier{TierAuto, TierGreedy} {
			faultinject.Enable(faultinject.New(1, faultinject.Rule{
				Site: faultinject.TierGreedy, Kind: kind, After: 1, Every: 1,
			}))
			eng, err := NewOptimizer(cat, q, Options{Tier: tier}, Config{Coster: StaticParams{Mem: dm}})
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Optimize()
			faultinject.Disable()
			if err != nil {
				t.Fatalf("kind %v tier %v: %v", kind, tier, err)
			}
			if res.Tier != TierNameDP || res.TierReason != TierEscFault {
				t.Fatalf("kind %v tier %v: tier=%q reason=%q, want dp/%s",
					kind, tier, res.Tier, res.TierReason, TierEscFault)
			}
			if err := plan.Validate(res.Plan); err != nil {
				t.Fatalf("kind %v tier %v: DP fallback plan invalid: %v", kind, tier, err)
			}
		}
	}
}

// TestTierGreedyStallEscalatesAndDegrades: a stall that outlives the
// request deadline makes the greedy attempt a fault (planning a stale
// request would waste the DP's budget); the run then descends the engine's
// anytime degradation ladder and still returns a valid plan — the tier
// fast path composes with, rather than replaces, the fail-soft machinery.
func TestTierGreedyStallEscalatesAndDegrades(t *testing.T) {
	cat, q, dm := workload.Example11()
	faultinject.Enable(faultinject.New(1, faultinject.Rule{
		Site: faultinject.TierGreedy, Kind: faultinject.KindStall, After: 1, Every: 1,
		Sleep: 60 * time.Millisecond,
	}))
	t.Cleanup(faultinject.Disable)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	eng, err := NewOptimizer(cat, q, Options{Tier: TierAuto}, Config{Coster: StaticParams{Mem: dm}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.OptimizeCtx(ctx)
	if err != nil {
		t.Fatalf("stalled request should degrade, not fail: %v", err)
	}
	if res.Tier != TierNameDP || res.TierReason != TierEscFault {
		t.Fatalf("tier=%q reason=%q, want dp/%s", res.Tier, res.TierReason, TierEscFault)
	}
	if !res.Degraded {
		t.Error("expired deadline after the stall should produce a degraded plan")
	}
	if err := plan.Validate(res.Plan); err != nil {
		t.Fatalf("degraded fallback plan invalid: %v", err)
	}
}

// TestTierCleanRunUnaffectedBySiteRegistration: with no injector enabled
// the site check is free and TierAuto behaves identically to a run without
// the fault machinery armed at all.
func TestTierCleanRunUnaffectedBySiteRegistration(t *testing.T) {
	cat, q, dm := workload.Example11()
	eng, err := NewOptimizer(cat, q, Options{Tier: TierAuto}, Config{Coster: StaticParams{Mem: dm}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier == "" {
		t.Fatal("TierAuto run carries no tier outcome")
	}
	if res.Count.PanicsRecovered != 0 {
		t.Errorf("clean run recovered %d panics", res.Count.PanicsRecovered)
	}
}
