package opt

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

func TestPlanCacheExactOnSeeds(t *testing.T) {
	cat, q, dm := workload.Example11()
	seeds := []*stats.Dist{
		stats.Point(2000),
		stats.Point(700),
		dm,
	}
	cache, err := BuildPlanCache(cat, q, Options{}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	// On any seed distribution the cache must match a fresh optimization.
	for _, seed := range seeds {
		fresh, err := AlgorithmC(cat, q, Options{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		_, cached := cache.Lookup(seed)
		if relDiff(cached, fresh.Cost) > costTol {
			t.Errorf("seed %v: cache %v, fresh %v", seed, cached, fresh.Cost)
		}
	}
	// The Example 1.1 cache holds exactly the two plans.
	if cache.Len() != 2 {
		t.Errorf("cache holds %d plans, want 2", cache.Len())
	}
}

func TestPlanCacheRegretBounded(t *testing.T) {
	cat, q, _ := workload.Example11()
	// Coverage seeds spanning the memory range.
	var seeds []*stats.Dist
	for _, m := range []float64{50, 300, 700, 1200, 2500} {
		seeds = append(seeds, stats.Point(m))
	}
	cache, err := BuildPlanCache(cat, q, Options{}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	// Observed distributions not among the seeds.
	observed := []*stats.Dist{
		stats.MustNew([]float64{650, 1500}, []float64{0.5, 0.5}),
		stats.MustNew([]float64{100, 900, 3000}, []float64{0.3, 0.4, 0.3}),
		stats.Point(1000),
	}
	for _, dm := range observed {
		regret, err := cache.Regret(cat, Options{}, dm)
		if err != nil {
			t.Fatal(err)
		}
		if regret < 1-costTol {
			t.Errorf("regret %v below 1 — cache beat the optimizer?", regret)
		}
		if regret > 1.10 {
			t.Errorf("regret %v too high for covering seeds on dist %v", regret, dm)
		}
	}
}

func TestPlanCacheRandomInstances(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Chain, seed%2 == 0)
		seeds := []*stats.Dist{
			stats.Point(30), stats.Point(500), stats.Point(5000),
			randMemDist3(seed + 600),
		}
		cache, err := BuildPlanCache(cat, q, Options{}, seeds)
		if err != nil {
			t.Fatal(err)
		}
		if cache.Len() < 1 {
			t.Fatal("empty cache")
		}
		p, ec := cache.Lookup(randMemDist3(seed + 601))
		if p == nil || ec <= 0 {
			t.Errorf("Lookup returned %v, %v", p, ec)
		}
	}
}

func TestPlanCacheValidation(t *testing.T) {
	cat, q, _ := workload.Example11()
	if _, err := BuildPlanCache(cat, q, Options{}, nil); err == nil {
		t.Error("empty seed list accepted")
	}
	bad := *q
	bad.Tables = []string{"ghost"}
	if _, err := BuildPlanCache(cat, &bad, Options{}, []*stats.Dist{stats.Point(1)}); err == nil {
		t.Error("invalid query accepted")
	}
}
