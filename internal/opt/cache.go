package opt

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// PlanCache implements the parametric-optimization combination the paper
// proposes (§3.2, §3.4): "we can precompute the best expected plan under a
// number of possible distributions (ones that give good coverage of what we
// expect to encounter at run-time), and store these expected plans, for use
// at query execution time." Compile-time: one Algorithm C run per seed
// distribution. Start-up time: pick the stored plan of least expected cost
// under the *observed* distribution — a handful of expected-cost
// evaluations instead of a full optimization.
type PlanCache struct {
	q       *query.SPJ
	entries []cacheEntry
}

type cacheEntry struct {
	seed *stats.Dist
	plan plan.Node
}

// BuildPlanCache optimizes the query once per seed distribution with
// Algorithm C and stores the (deduplicated) plans.
func BuildPlanCache(cat *catalog.Catalog, q *query.SPJ, opts Options, seeds []*stats.Dist) (*PlanCache, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("opt: plan cache needs at least one seed distribution")
	}
	c := &PlanCache{q: q}
	have := map[string]bool{}
	for _, dm := range seeds {
		res, err := AlgorithmC(cat, q, opts, dm)
		if err != nil {
			return nil, fmt.Errorf("opt: plan cache seed %v: %w", dm, err)
		}
		if key := res.Plan.Key(); !have[key] {
			have[key] = true
			c.entries = append(c.entries, cacheEntry{seed: dm, plan: res.Plan})
		}
	}
	return c, nil
}

// Len returns the number of distinct cached plans.
func (c *PlanCache) Len() int { return len(c.entries) }

// Lookup returns the cached plan with the least expected cost under the
// observed start-up-time distribution, and that expected cost. It never
// runs the optimizer.
func (c *PlanCache) Lookup(observed *stats.Dist) (plan.Node, float64) {
	var best plan.Node
	bestCost := math.Inf(1)
	for _, e := range c.entries {
		ec := plan.ExpCost(e.plan, observed)
		if ec < bestCost {
			best, bestCost = e.plan, ec
		}
	}
	return best, bestCost
}

// Regret returns how much worse the cache's Lookup answer is than a fresh
// Algorithm C optimization under the observed distribution, as a ratio ≥ 1.
// It is the cache-coverage diagnostic used by tests and the E4 ablation.
func (c *PlanCache) Regret(cat *catalog.Catalog, opts Options, observed *stats.Dist) (float64, error) {
	_, cached := c.Lookup(observed)
	fresh, err := AlgorithmC(cat, c.q, opts, observed)
	if err != nil {
		return 0, err
	}
	if fresh.Cost <= 0 {
		return 1, nil
	}
	return cached / fresh.Cost, nil
}
