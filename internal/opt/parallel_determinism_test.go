package opt

// Determinism proof for the level-synchronized parallel DP: for every valid
// Space × Coster × Objective configuration, a run with Parallelism N ≥ 2
// must be byte-identical to the sequential run — same plan key, the same
// float64 bit pattern for the cost, equal Stats counters, and a deeply
// equal decision trace. The fault-matrix test separately checks that
// injected faults under parallel execution still land on the anytime
// ladder (valid plan or typed error) and never hang.

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/stats"
)

// parGridConfigs enumerates every valid engine configuration over a shared
// memory distribution (MultiParams only prices expected cost; the pipelined
// space always runs sequentially and is excluded).
func parGridConfigs(dm *stats.Dist) map[string]Config {
	chain := stats.MustNewChain(dm.Support(), [][]float64{
		{0.7, 0.2, 0.1},
		{0.2, 0.6, 0.2},
		{0.1, 0.2, 0.7},
	})
	costers := map[string]Coster{
		"fixed":  FixedParams{Mem: dm.Mean()},
		"static": StaticParams{Mem: dm},
		"phased": PhasedParams{Phases: []*stats.Dist{dm, dm.Scale(0.5), dm.Scale(2)}},
		"markov": MarkovParams{Chain: chain, Initial: dm},
		"multi":  MultiParams{Mem: dm},
	}
	objectives := map[string]Objective{
		"expcost": ExpectedCost{},
		"ceq":     ExponentialUtility{Gamma: 1e-5},
		"mv":      VariancePenalized{Lambda: 1e-7},
	}
	spaces := map[string]Space{"leftdeep": SpaceLeftDeep, "bushy": SpaceBushy}
	out := map[string]Config{}
	for sn, sp := range spaces {
		for cn, co := range costers {
			for on, ob := range objectives {
				if cn == "multi" && on != "expcost" {
					continue // rejected by Config.validate
				}
				out[sn+"/"+cn+"/"+on] = Config{Space: sp, Coster: co, Objective: ob}
			}
		}
	}
	return out
}

// runOnce optimizes one fresh session at the given parallelism.
func runOnce(t *testing.T, name string, cfg Config, opts Options, seed int64, n int) (*Result, Stats) {
	t.Helper()
	cat, q := randInstance(t, seed, n, 0, true)
	eng, err := NewOptimizer(cat, q, opts, cfg)
	if err != nil {
		t.Fatalf("%s: NewOptimizer: %v", name, err)
	}
	res, err := eng.Optimize()
	if err != nil {
		t.Fatalf("%s: Optimize: %v", name, err)
	}
	return res, eng.Stats()
}

func TestParallelMatchesSequentialAcrossGrid(t *testing.T) {
	dm := stats.MustNew([]float64{200, 900, 4000}, []float64{0.3, 0.4, 0.3})
	for name, cfg := range parGridConfigs(dm) {
		for _, seed := range []int64{7101, 7102} {
			n := 6
			if seed == 7102 {
				n = 7
			}
			seq, seqStats := runOnce(t, name, cfg, Options{Trace: true}, seed, n)
			for _, par := range []int{2, 4} {
				got, gotStats := runOnce(t, name, cfg, Options{Trace: true, Parallelism: par}, seed, n)
				if got.Plan.Key() != seq.Plan.Key() {
					t.Errorf("%s seed %d P=%d: plan %s != sequential %s",
						name, seed, par, got.Plan.Key(), seq.Plan.Key())
				}
				if math.Float64bits(got.Cost) != math.Float64bits(seq.Cost) {
					t.Errorf("%s seed %d P=%d: cost %v (%#x) != sequential %v (%#x)",
						name, seed, par, got.Cost, math.Float64bits(got.Cost),
						seq.Cost, math.Float64bits(seq.Cost))
				}
				if gotStats != seqStats {
					t.Errorf("%s seed %d P=%d: stats %+v != sequential %+v",
						name, seed, par, gotStats, seqStats)
				}
				if got.Count != seq.Count {
					t.Errorf("%s seed %d P=%d: result counters %+v != sequential %+v",
						name, seed, par, got.Count, seq.Count)
				}
				if !reflect.DeepEqual(got.Trace, seq.Trace) {
					t.Errorf("%s seed %d P=%d: trace diverged from sequential\npar: %+v\nseq: %+v",
						name, seed, par, got.Trace, seq.Trace)
				}
			}
		}
	}
}

// TestParallelSessionReuse: Algorithm A's SetCoster loop over one shared
// session must stay byte-identical under parallelism — memos, arena and
// cumulative counters carry across the per-bucket runs.
func TestParallelSessionReuse(t *testing.T) {
	dm := stats.MustNew([]float64{150, 800, 5000}, []float64{0.25, 0.5, 0.25})
	run := func(par int) ([]string, []uint64, Stats) {
		cat, q := randInstance(t, 7203, 6, 0, true)
		eng, err := NewOptimizer(cat, q, Options{Parallelism: par}, Config{Coster: FixedParams{Mem: dm.Value(0)}})
		if err != nil {
			t.Fatalf("NewOptimizer: %v", err)
		}
		var keys []string
		var costs []uint64
		for i := 0; i < dm.Len(); i++ {
			if err := eng.SetCoster(FixedParams{Mem: dm.Value(i)}); err != nil {
				t.Fatalf("SetCoster: %v", err)
			}
			res, err := eng.Optimize()
			if err != nil {
				t.Fatalf("Optimize: %v", err)
			}
			keys = append(keys, res.Plan.Key())
			costs = append(costs, math.Float64bits(res.Cost))
		}
		return keys, costs, eng.Stats()
	}
	seqKeys, seqCosts, seqStats := run(1)
	for _, par := range []int{2, 4} {
		keys, costs, st := run(par)
		if !reflect.DeepEqual(keys, seqKeys) || !reflect.DeepEqual(costs, seqCosts) {
			t.Errorf("P=%d: per-bucket results diverged: %v / %v vs %v / %v", par, keys, costs, seqKeys, seqCosts)
		}
		if st != seqStats {
			t.Errorf("P=%d: session stats %+v != sequential %+v", par, st, seqStats)
		}
	}
}

// TestParallelFaultMatrix: every injected fault kind under Parallelism 4
// must end with a valid finished plan (possibly degraded) or a typed error
// — and must not deadlock a worker or the level barrier.
func TestParallelFaultMatrix(t *testing.T) {
	dm := stats.MustNew([]float64{200, 900, 4000}, []float64{0.3, 0.4, 0.3})
	faults := map[string]faultinject.Rule{
		"nan":    {Site: faultinject.JoinCost, Kind: faultinject.KindNaN, After: 3, Every: 5},
		"inf":    {Site: faultinject.JoinCost, Kind: faultinject.KindInf, After: 3, Every: 5},
		"panic":  {Site: faultinject.JoinCost, Kind: faultinject.KindPanic, After: 10},
		"cancel": {Site: faultinject.JoinCost, Kind: faultinject.KindCancel, After: 15},
	}
	for fname, rule := range faults {
		for _, space := range []Space{SpaceLeftDeep, SpaceBushy} {
			t.Run(fname+"/"+space.String(), func(t *testing.T) {
				cat, q := randInstance(t, 7301, 6, 0, true)
				eng, err := NewOptimizer(cat, q, Options{Parallelism: 4, Trace: true},
					Config{Space: space, Coster: StaticParams{Mem: dm}})
				if err != nil {
					t.Fatalf("NewOptimizer: %v", err)
				}
				rc, cancel := context.WithCancel(context.Background())
				defer cancel()
				in := faultinject.New(1, rule)
				in.OnCancel(cancel)
				faultinject.Enable(in)
				defer faultinject.Disable()

				done := make(chan struct{})
				var res *Result
				var oerr error
				go func() {
					res, oerr = eng.OptimizeCtx(rc)
					close(done)
				}()
				select {
				case <-done:
				case <-time.After(30 * time.Second):
					t.Fatal("parallel run hung under fault injection")
				}
				if oerr != nil {
					// Typed failure is acceptable for total poisoning.
					return
				}
				checkValidPlan(t, res, q, fname)
			})
		}
	}
}
