package opt

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
)

// Result is an optimizer's output: the chosen plan and the value of the
// objective it minimized (specific cost for the LSC optimizers, expected
// cost for the LEC ones), together with instrumentation counters.
type Result struct {
	Plan plan.Node
	// Cost is the objective value of Plan (Φ at the fixed parameter values
	// for SystemR; E[Φ] for the LEC optimizers).
	Cost float64
	// Count holds instrumentation totals for the run.
	Count Counters
}

// stepCoster abstracts how one plan-construction step is costed. The System
// R dynamic program is *generic* in this interface: plugging in a
// fixed-parameter coster yields the classical LSC optimizer (Theorem 2.1),
// plugging in an expected-cost coster yields Algorithm C (Theorem 3.3), and
// a phase-indexed expected-cost coster yields the dynamic-parameter variant
// (Theorem 3.4). This works because every one of these objectives
// distributes over the sum of per-step costs.
type stepCoster interface {
	// joinStep returns the cost contribution of joining left with the scan
	// of relation j using method m, forming subset s, executed as phase
	// `phase` (0-based; phase k is the k-th join of a left-deep plan).
	// Implementations may use only the inputs' size estimates (classical
	// costers) or their full size distributions (Algorithm D).
	joinStep(m cost.Method, left plan.Node, right *plan.Scan, s query.RelSet, j, phase int) float64
	// sortStep returns the cost of the final ORDER BY sort over input's
	// output, executed after join phase `phase`.
	sortStep(input plan.Node, phase int) float64
}

// dpEntry is the best plan found for one lattice node.
type dpEntry struct {
	node plan.Node
	cost float64
}

// runDP executes the bottom-up dynamic program over the subset lattice
// (paper §2.2) using the supplied step coster, returning the best finished
// left-deep plan (with the ORDER BY sort applied if required).
func runDP(ctx *Context, sc stepCoster) (*Result, error) {
	n := ctx.Q.NumRels()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty query")
	}
	if n == 1 {
		return finishSingle(ctx, sc)
	}

	best := make(map[query.RelSet]dpEntry, 1<<uint(n))
	// Depth 1: LEC/LSC access paths coincide because scan cost is
	// memory-independent.
	for i := 0; i < n; i++ {
		s := ctx.BestScan(i)
		best[query.NewRelSet(i)] = dpEntry{node: s, cost: s.AccessCost()}
	}

	full := query.FullSet(n)
	var rootBest dpEntry
	rootBest.cost = math.Inf(1)
	var rootFound bool

	for d := 2; d <= n; d++ {
		query.SubsetsOfSize(n, d, func(s query.RelSet) {
			entry := dpEntry{cost: math.Inf(1)}
			s.ForEach(func(j int) {
				sj := s.Without(j)
				left, ok := best[sj]
				if !ok {
					return
				}
				if !ctx.extensionAllowed(sj, j) {
					return
				}
				scan := ctx.BestScan(j)
				base := left.cost + scan.AccessCost()
				for _, m := range ctx.Opts.methods() {
					stepCost := sc.joinStep(m, left.node, scan, s, j, d-2)
					total := base + stepCost
					if total < entry.cost {
						entry = dpEntry{
							node: ctx.NewJoin(left.node, scan, m, s, j),
							cost: total,
						}
					}
					// At the root, order matters: a slightly costlier join
					// whose sort-merge output satisfies ORDER BY can beat the
					// cheapest join once the final sort is charged. Evaluate
					// every root candidate with the sort included (unless the
					// ablation flag reverts to naive handling).
					if s == full && !ctx.Opts.NaiveOrderHandling {
						cand := ctx.NewJoin(left.node, scan, m, s, j)
						finished, added := ctx.FinishPlan(cand)
						ft := total
						if added {
							ft += sc.sortStep(cand, d-2)
						}
						if ft < rootBest.cost {
							rootBest = dpEntry{node: finished, cost: ft}
							rootFound = true
						}
					}
				}
			})
			if !math.IsInf(entry.cost, 1) {
				best[s] = entry
			}
		})
	}
	if ctx.Opts.NaiveOrderHandling {
		entry, ok := best[full]
		if !ok {
			return nil, fmt.Errorf("opt: no plan found (disconnected lattice?)")
		}
		finished, added := ctx.FinishPlan(entry.node)
		total := entry.cost
		if added {
			total += sc.sortStep(entry.node, n-2)
		}
		return &Result{Plan: finished, Cost: total, Count: ctx.Count}, nil
	}
	if !rootFound {
		return nil, fmt.Errorf("opt: no plan found (disconnected lattice?)")
	}
	return &Result{Plan: rootBest.node, Cost: rootBest.cost, Count: ctx.Count}, nil
}

// finishSingle handles single-relation queries: every access path competes,
// with the ORDER BY sort charged when the path does not deliver the order.
func finishSingle(ctx *Context, sc stepCoster) (*Result, error) {
	bestCost := math.Inf(1)
	var bestNode plan.Node
	for _, s := range ctx.Scans(0) {
		finished, added := ctx.FinishPlan(s)
		total := s.AccessCost()
		if added {
			total += sc.sortStep(s, 0)
		}
		if total < bestCost {
			bestCost, bestNode = total, finished
		}
	}
	if bestNode == nil {
		return nil, fmt.Errorf("opt: no access path")
	}
	return &Result{Plan: bestNode, Cost: bestCost, Count: ctx.Count}, nil
}
