package opt

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
)

// Result is an optimizer's output: the chosen plan and the value of the
// objective it minimized (specific cost for the LSC optimizers, expected
// cost for the LEC ones), together with instrumentation counters.
type Result struct {
	Plan plan.Node
	// Cost is the objective value of Plan (Φ at the fixed parameter values
	// for SystemR; E[Φ] for the LEC optimizers).
	Cost float64
	// Count holds instrumentation totals for the run. When the run shares
	// an engine session (Algorithms A/B, SetCoster loops) the totals are
	// cumulative over the session.
	Count Counters
	// Degraded reports that the search did not run to completion — it was
	// interrupted by a deadline, a budget, a recovered panic, or had to
	// discard non-finite costs — and Plan came from the anytime ladder.
	Degraded bool
	// Reason says why the run degraded (DegradeNone when Degraded is false).
	Reason DegradeReason
	// Rung names the ladder rung that produced a degraded plan: RungFull
	// (empty) for a completed search, RungPartial for the best complete
	// plan the interrupted search had finished, RungGreedy for the greedy
	// fallback at the distribution mean.
	Rung string
	// Enumeration is the lattice enumerator that was actually in effect:
	// the requested Options.Enumeration, except that EnumConnected reports
	// EnumExhaustive when the disconnected-graph fallback engaged.
	Enumeration Enumeration
	// Tier names the planning tier that produced the plan when tiered
	// planning was enabled (Options.Tier ≠ TierDP): TierNameGreedy for the
	// served fast path, TierNameDP after an escalation. Empty when the tier
	// controller did not run.
	Tier string
	// TierReason says why that tier answered: "low-risk"/"forced" for a
	// served greedy plan, or the escalation trigger ("gap", "variance",
	// "level-set", "objective", "fault", "unplannable") for a DP run.
	TierReason string
	// TierGap is the greedy plan's relative expected-cost gap vs the
	// admissible lower bound (greedy/LB − 1), when it was computed.
	TierGap float64
	// Trace is the structured decision trace, populated only when
	// Options.Trace is set. Single-search strategies (SystemR, Algorithms
	// C/C-dynamic/D, the LSC plans) record per-subset decisions and every
	// finished root candidate; Algorithms A and B attach their shared
	// session's trace; the aggregation path leaves it nil.
	Trace *obs.Trace
}

// stepPricer abstracts how one plan-construction step is priced. The
// search engine is *generic* in this interface: plugging in a
// fixed-parameter pricer yields the classical LSC optimizer (Theorem 2.1),
// an expected-cost pricer yields Algorithm C (Theorem 3.3), a phase-indexed
// one the dynamic-parameter variant (Theorem 3.4), a distribution-
// propagating one Algorithm D (§3.6), and the certainty-equivalent and
// mean-variance pricers the 2002 risk objectives. This works because every
// one of these objectives distributes over the sum of per-step costs —
// and because the pricers read only the operands' size statistics, the
// same pricer serves the left-deep, bushy, and pipelined spaces.
type stepPricer interface {
	// joinStep returns the objective contribution of joining left with
	// right using method m, forming subset s, executed as phase `phase`
	// (0-based; in the left-deep walk, phase k is the k-th join).
	// Implementations may use the inputs' size estimates (classical
	// pricers) or their full size distributions (Algorithm D).
	joinStep(m cost.Method, left, right plan.Node, s query.RelSet, phase int) float64
	// sortStep returns the cost of the final ORDER BY sort over input's
	// output, executed after join phase `phase`.
	sortStep(input plan.Node, phase int) float64
}

// dpEntry is the best plan found for one lattice node.
type dpEntry struct {
	node plan.Node
	cost float64
}

// winStep identifies a subset's winning join without materializing it: the
// operands and method of the cheapest candidate. The node itself is interned
// by applySubset during the (single-threaded, task-ordered) merge, which
// keeps the plan arena — and its lock — entirely out of the workers' solve
// loops. scan is set for left-deep winners, right for bushy ones.
type winStep struct {
	left  plan.Node
	right plan.Node
	scan  *plan.Scan
	m     cost.Method
	j     int
}

func (w *winStep) found() bool { return w.scan != nil || w.right != nil }

// subsetResult is everything solving one lattice node produces: the best DP
// entry (cost in entry, node deferred to win), the trace artifacts (the
// subset's decision event and, at the full set, the finished root candidates
// in consideration order), and the best finished root. Solvers write nothing
// shared — the driver applies results in subset order, which is what lets
// the parallel driver replay the sequential walk byte for byte.
type subsetResult struct {
	entry     dpEntry
	win       winStep
	event     obs.TraceEvent
	hasEvent  bool
	roots     []obs.RootCandidate
	rootBest  dpEntry
	rootFound bool
}

// solveLeftDeep solves one lattice node of the left-deep DP: the best
// extension of every solved S\{j} by relation j, and — at the full set —
// the finished root candidates with the ORDER BY sort charged. It reads
// only fully-solved lower levels of best; ctx is the calling worker's
// context (the root's in sequential mode, a shell in parallel mode).
func (o *Optimizer) solveLeftDeep(ctx *Context, pr stepPricer, bp batchStepPricer, best *dpTab, s query.RelSet, d int, full query.RelSet) subsetResult {
	res := subsetResult{entry: dpEntry{cost: math.Inf(1)}, rootBest: dpEntry{cost: math.Inf(1)}}
	if !ctx.visitSubset() {
		return res
	}
	// Gate trace work on the option, not the recorder: parallel worker
	// shells carry a nil recorder (the root flushes their events), but must
	// still produce them.
	wantTrace := ctx.Opts.Trace
	var tw traceWatch
	if wantTrace {
		tw = newTraceWatch()
	}
	methods := ctx.Opts.Methods
	s.ForEach(func(j int) {
		if ctx.stopped() {
			return
		}
		sj := s.Without(j)
		// Under the connected enumerator a disconnected S\{j} was never
		// solved, so its entry is empty and the extension is skipped — which
		// is exactly the csg–cmp restriction: every explored plan's prefixes
		// are connected.
		left := best.get(sj)
		if left.node == nil {
			return
		}
		if !ctx.extensionAllowed(sj, j) {
			return
		}
		scan := ctx.BestScan(j)
		base := left.cost + scan.AccessCost()
		var mb methodBatch
		for _, m := range methods {
			ctx.Count.JoinSteps++
			var stepCost float64
			if bp != nil {
				stepCost = ctx.priceJoinBatched(bp, &mb, m, left.node, scan, s, d-2)
			} else {
				stepCost = ctx.priceJoin(pr, m, left.node, scan, s, d-2)
			}
			total := base + stepCost
			if wantTrace {
				tw.consider(j, m, total)
			}
			if total < res.entry.cost {
				res.entry.cost = total
				res.win = winStep{left: left.node, scan: scan, m: m, j: j}
			} else {
				ctx.Count.Prunes++
			}
			// At the root, order matters: a slightly costlier join
			// whose sort-merge output satisfies ORDER BY can beat the
			// cheapest join once the final sort is charged. Evaluate
			// every root candidate with the sort included (unless the
			// ablation flag reverts to naive handling).
			if s == full && !ctx.Opts.NaiveOrderHandling {
				cand := ctx.NewJoin(left.node, scan, m, s, j)
				finished, added := ctx.FinishPlan(cand)
				ft := total
				if added {
					ft += ctx.priceSort(pr, cand, d-2)
				}
				if wantTrace {
					res.roots = append(res.roots, obs.RootCandidate{
						Join: ctx.Q.Tables[j], Method: m.String(),
						Cost: ft, Sorted: added,
					})
				}
				if ft < res.rootBest.cost {
					res.rootBest = dpEntry{node: finished, cost: ft}
					res.rootFound = true
				}
			}
		}
	})
	if wantTrace {
		if e, ok := tw.event(ctx, s, d, s == full); ok {
			res.event, res.hasEvent = e, true
		}
	}
	return res
}

// applySubset merges one solved subset into the driver's state: trace
// artifacts are flushed to the root recorder (candidates first, then the
// decision event — the order the sequential walk emits them), the winning
// join is interned and the DP table gains the entry, and the best finished
// root is folded in. Called in subset order by both drivers; interning here
// rather than in the solvers keeps the arena out of the parallel workers'
// loops and makes PlansBuilt/MemoHits totals trivially schedule-independent.
func applySubset(ctx *Context, best *dpTab, s query.RelSet, r *subsetResult, rootBest *dpEntry, rootFound *bool) {
	if tr := ctx.trace; tr != nil {
		for _, rc := range r.roots {
			tr.AddRoot(rc)
		}
		if r.hasEvent {
			tr.Add(r.event)
		}
	}
	if r.win.found() {
		if r.win.scan != nil {
			r.entry.node = ctx.NewJoin(r.win.left, r.win.scan, r.win.m, s, r.win.j)
		} else {
			r.entry.node = ctx.newBushyJoin(r.win.left, r.win.right, r.win.m, s)
		}
		best.put(s, r.entry)
	}
	if r.rootFound && r.rootBest.cost < rootBest.cost {
		*rootBest = r.rootBest
		*rootFound = true
	}
}

// runLeftDeep executes the bottom-up dynamic program over the subset
// lattice (paper §2.2) using the engine's pricer, returning the best
// finished left-deep plan (with the ORDER BY sort applied if required).
func (o *Optimizer) runLeftDeep() (*Result, error) {
	ctx, pr := o.ctx, o.pricer
	n := ctx.Q.NumRels()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty query")
	}
	if n == 1 {
		return finishSingle(ctx, pr)
	}

	best := o.dpTable(n)
	// Depth 1: LEC/LSC access paths coincide because scan cost is
	// memory-independent.
	for i := 0; i < n; i++ {
		s := ctx.BestScan(i)
		best.put(query.NewRelSet(i), dpEntry{node: s, cost: s.AccessCost()})
	}
	ctx.traceScans()

	full := query.FullSet(n)
	rootBest := dpEntry{cost: math.Inf(1)}
	var rootFound bool
	bp := batchFor(pr)

	for d := 2; d <= n && !ctx.stopped(); d++ {
		ctx.forEachLevel(d, func(s query.RelSet) {
			r := o.solveLeftDeep(ctx, pr, bp, best, s, d, full)
			applySubset(ctx, best, s, &r, &rootBest, &rootFound)
		})
	}
	return o.finishLeftDeep(ctx, pr, best, full, n, rootBest, rootFound)
}

// finishLeftDeep is the left-deep drivers' shared epilogue: the anytime
// salvage paths when the run was interrupted, the naive-order ablation, and
// the normal order-aware return.
func (o *Optimizer) finishLeftDeep(ctx *Context, pr stepPricer, best *dpTab, full query.RelSet, n int, rootBest dpEntry, rootFound bool) (*Result, error) {
	if ctx.stopped() {
		// Anytime: hand back the best complete root candidate found before
		// the interruption, if the walk got that far; OptimizeCtx flags it
		// and otherwise descends the ladder.
		if rootFound {
			return &Result{Plan: rootBest.node, Cost: rootBest.cost, Count: ctx.snapshotCount()}, nil
		}
		if e := best.get(full); e.node != nil {
			finished, added := ctx.FinishPlan(e.node)
			total := e.cost
			if added {
				total += ctx.priceSort(pr, e.node, n-2)
			}
			return &Result{Plan: finished, Cost: total, Count: ctx.snapshotCount()}, nil
		}
		return nil, ctx.stopCause
	}
	if ctx.Opts.NaiveOrderHandling {
		entry := best.get(full)
		if entry.node == nil {
			return nil, fmt.Errorf("opt: no plan found (disconnected lattice?)")
		}
		finished, added := ctx.FinishPlan(entry.node)
		total := entry.cost
		if added {
			total += ctx.priceSort(pr, entry.node, n-2)
		}
		return &Result{Plan: finished, Cost: total, Count: ctx.snapshotCount()}, nil
	}
	if !rootFound {
		return nil, fmt.Errorf("opt: no plan found (disconnected lattice?)")
	}
	return &Result{Plan: rootBest.node, Cost: rootBest.cost, Count: ctx.snapshotCount()}, nil
}

// finishSingle handles single-relation queries: every access path competes,
// with the ORDER BY sort charged when the path does not deliver the order.
func finishSingle(ctx *Context, pr stepPricer) (*Result, error) {
	ctx.traceScans()
	bestCost := math.Inf(1)
	var bestNode plan.Node
	for _, s := range ctx.Scans(0) {
		finished, added := ctx.FinishPlan(s)
		total := s.AccessCost()
		if added {
			total += ctx.priceSort(pr, s, 0)
		}
		if ctx.trace != nil {
			ctx.trace.AddRoot(obs.RootCandidate{
				Join: s.Table, Method: scanLabel(s), Cost: total, Sorted: added,
			})
		}
		if total < bestCost {
			bestCost, bestNode = total, finished
		}
	}
	if bestNode == nil {
		return nil, fmt.Errorf("opt: no access path")
	}
	return &Result{Plan: bestNode, Cost: bestCost, Count: ctx.snapshotCount()}, nil
}
