package opt

import (
	"math"

	"repro/internal/query"
	"repro/internal/stats"
)

// The per-subset memo tables are on the DP's hot path: every join step asks
// for the pages/rows of its operand subsets. Their representation is driven
// by the enumerator's predicted subset count (memoSizing, enum.go): when
// the effective enumeration will touch a large fraction of the 2^n lattice,
// a dense slice indexed by the RelSet bitmask beats a hash table — no
// hashing, no bucket growth; when the enumerator predicts a sparse lattice
// (connected enumeration over a large sparse join graph, or n past
// denseMemoMaxRels), an open-addressed sparseTab keyed by RelSet keeps the
// footprint proportional to the subsets actually touched — an n=30 chain
// allocates hundreds of entries, not 2^30. Either way the backing storage
// is allocated lazily on first put, so a Context built for inspection
// (breakpoint analysis, admission control) costs nothing.

// floatMemo memoizes a float64 per relation subset. Dense entries use NaN
// as the "unset" sentinel — no legitimate subset statistic is NaN.
//
// probe marks a pre-DP phase — the greedy planning tier — that touches only
// O(n²) subsets: NaN-filling a dense 2^n table for it would cost orders of
// magnitude more than the phase itself (16 MB of memclr at n=20 against a
// sub-100µs latency budget). While probe is set, the lazy first allocation
// falls back to a small sparse table regardless of the sizing verdict;
// settle migrates those entries into the dense layout if the DP then runs.
type floatMemo struct {
	sz     memoSizing
	probe  bool
	dense  []float64
	sparse *sparseTab[float64]
}

func newFloatMemo(sz memoSizing) *floatMemo { return &floatMemo{sz: sz} }

// settle ends probe mode. If the probe forced a sparse table where the
// sizing wants dense, the entries migrate so the DP still gets its
// hash-free lookups; the one-time fill cost is amortized by the full
// lattice sweep that follows.
func (fm *floatMemo) settle() {
	fm.probe = false
	if fm.sparse == nil || !fm.sz.dense {
		return
	}
	d := make([]float64, 1<<uint(fm.sz.n))
	for i := range d {
		d[i] = math.NaN()
	}
	for i, k := range fm.sparse.keys {
		if k != 0 {
			d[k-1] = fm.sparse.vals[i]
		}
	}
	fm.dense, fm.sparse = d, nil
}

func (fm *floatMemo) get(s query.RelSet) (float64, bool) {
	if fm.dense != nil {
		v := fm.dense[s]
		return v, !math.IsNaN(v)
	}
	if fm.sparse != nil {
		return fm.sparse.get(s)
	}
	return 0, false
}

func (fm *floatMemo) put(s query.RelSet, v float64) {
	if fm.dense == nil && fm.sparse == nil {
		switch {
		case fm.probe:
			fm.sparse = newSparseTab[float64](fm.sz.n * fm.sz.n)
		case fm.sz.dense:
			d := make([]float64, 1<<uint(fm.sz.n))
			for i := range d {
				d[i] = math.NaN()
			}
			fm.dense = d
		default:
			fm.sparse = newSparseTab[float64](fm.sz.predict)
		}
	}
	if fm.dense != nil {
		fm.dense[s] = v
		return
	}
	fm.sparse.put(s, v)
}

// distMemo memoizes a distribution per relation subset (nil = unset).
type distMemo struct {
	sz     memoSizing
	dense  []*stats.Dist
	sparse *sparseTab[*stats.Dist]
}

func newDistMemo(sz memoSizing) *distMemo { return &distMemo{sz: sz} }

func (dm *distMemo) get(s query.RelSet) (*stats.Dist, bool) {
	if dm.dense != nil {
		d := dm.dense[s]
		return d, d != nil
	}
	if dm.sparse != nil {
		d, ok := dm.sparse.get(s)
		return d, ok && d != nil
	}
	return nil, false
}

func (dm *distMemo) put(s query.RelSet, d *stats.Dist) {
	if dm.dense == nil && dm.sparse == nil {
		if dm.sz.dense {
			dm.dense = make([]*stats.Dist, 1<<uint(dm.sz.n))
		} else {
			dm.sparse = newSparseTab[*stats.Dist](dm.sz.predict)
		}
	}
	if dm.dense != nil {
		dm.dense[s] = d
		return
	}
	dm.sparse.put(s, d)
}
