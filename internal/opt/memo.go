package opt

import (
	"math"

	"repro/internal/query"
	"repro/internal/stats"
)

// The per-subset memo tables are on the DP's hot path: every join step asks
// for the pages/rows of its operand subsets. For the query sizes the DP can
// actually enumerate, a dense slice indexed by the RelSet bitmask beats a
// map — no hashing, no bucket growth — at a memory cost of 2^n entries.
// Past denseMemoMaxRels relations the table would dwarf the working set, so
// the memos fall back to maps (the DP itself is Ω(2^n) and long infeasible
// before that point; the fallback just keeps construction cheap for callers
// that build a Context without running the full lattice).
const denseMemoMaxRels = 20

// floatMemo memoizes a float64 per relation subset. Dense entries use NaN
// as the "unset" sentinel — no legitimate subset statistic is NaN.
type floatMemo struct {
	dense []float64
	m     map[query.RelSet]float64
}

func newFloatMemo(n int) *floatMemo {
	if n <= denseMemoMaxRels {
		d := make([]float64, 1<<uint(n))
		for i := range d {
			d[i] = math.NaN()
		}
		return &floatMemo{dense: d}
	}
	return &floatMemo{m: make(map[query.RelSet]float64)}
}

func (fm *floatMemo) get(s query.RelSet) (float64, bool) {
	if fm.dense != nil {
		v := fm.dense[s]
		return v, !math.IsNaN(v)
	}
	v, ok := fm.m[s]
	return v, ok
}

func (fm *floatMemo) put(s query.RelSet, v float64) {
	if fm.dense != nil {
		fm.dense[s] = v
		return
	}
	fm.m[s] = v
}

// distMemo memoizes a distribution per relation subset (nil = unset).
type distMemo struct {
	dense []*stats.Dist
	m     map[query.RelSet]*stats.Dist
}

func newDistMemo(n int) *distMemo {
	if n <= denseMemoMaxRels {
		return &distMemo{dense: make([]*stats.Dist, 1<<uint(n))}
	}
	return &distMemo{m: make(map[query.RelSet]*stats.Dist)}
}

func (dm *distMemo) get(s query.RelSet) (*stats.Dist, bool) {
	if dm.dense != nil {
		d := dm.dense[s]
		return d, d != nil
	}
	d, ok := dm.m[s]
	return d, ok
}

func (dm *distMemo) put(s query.RelSet, d *stats.Dist) {
	if dm.dense != nil {
		dm.dense[s] = d
		return
	}
	dm.m[s] = d
}
