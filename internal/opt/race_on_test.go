//go:build race

package opt

// raceEnabled reports whether the race detector is compiled in; latency
// assertions are skipped under -race because instrumentation inflates
// per-operation cost by an order of magnitude.
const raceEnabled = true
