package opt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/workload"
)

// pcMethods restricts the plan space to methods whose cost is piecewise
// constant in memory, where the parametric table is provably exact.
var pcMethods = []cost.Method{cost.SortMerge, cost.GraceHash, cost.NestedLoop}

func TestParametricTableStructure(t *testing.T) {
	cat, q, _ := workload.Example11()
	table, err := ParametricPlans(cat, q, Options{Methods: pcMethods})
	if err != nil {
		t.Fatal(err)
	}
	if len(table) < 2 {
		t.Fatalf("table has %d intervals; Example 1.1 has at least two regimes", len(table))
	}
	if table[0].Lo != 0 {
		t.Errorf("first interval starts at %v", table[0].Lo)
	}
	if !math.IsInf(table[len(table)-1].Hi, 1) {
		t.Errorf("last interval ends at %v", table[len(table)-1].Hi)
	}
	for i := 1; i < len(table); i++ {
		if table[i].Lo != table[i-1].Hi {
			t.Errorf("gap between intervals %d and %d", i-1, i)
		}
		if table[i].Plan.Key() == table[i-1].Plan.Key() {
			t.Errorf("adjacent intervals %d, %d share a plan (not merged)", i-1, i)
		}
	}
}

// TestParametricLookupMatchesFreshOptimization: for any memory value the
// table lookup returns a plan exactly as cheap as running System R at that
// value — the [INSS92] equivalence.
func TestParametricLookupMatchesFreshOptimization(t *testing.T) {
	opts := Options{Methods: pcMethods}
	for seed := int64(0); seed < 6; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Chain, seed%2 == 0)
		table, err := ParametricPlans(cat, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed + 50))
		for trial := 0; trial < 40; trial++ {
			mem := math.Exp(rng.Float64()*9) + 1 // 2 .. ~8100 pages
			p, err := LookupParam(table, mem)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := SystemR(cat, q, opts, mem)
			if err != nil {
				t.Fatal(err)
			}
			if relDiff(plan.Cost(p, mem), fresh.Cost) > costTol {
				t.Errorf("seed %d mem %.1f: lookup cost %v, fresh %v",
					seed, mem, plan.Cost(p, mem), fresh.Cost)
			}
		}
	}
}

// TestParametricExample11Regimes: the table switches from a Grace-hash plan
// to the sort-merge plan at 1000 pages (the √L threshold).
func TestParametricExample11Regimes(t *testing.T) {
	cat, q, _ := workload.Example11()
	table, err := ParametricPlans(cat, q, Options{Methods: pcMethods})
	if err != nil {
		t.Fatal(err)
	}
	p, err := LookupParam(table, 700)
	if err != nil {
		t.Fatal(err)
	}
	if j := rootJoin(t, p); j.Method != cost.GraceHash {
		t.Errorf("at 700 pages: %v, want grace-hash", j.Method)
	}
	p, err = LookupParam(table, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if j := rootJoin(t, p); j.Method != cost.SortMerge {
		t.Errorf("at 2000 pages: %v, want sort-merge", j.Method)
	}
}

// TestStrategyOrdering: with the true value revealed at start-up, the
// parametric strategy is at least as good as LEC, which is at least as good
// as LSC — and on Example 1.1 all three are distinct.
func TestStrategyOrdering(t *testing.T) {
	cat, q, dm := workload.Example11()
	opts := Options{Methods: pcMethods}
	table, err := ParametricPlans(cat, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	param, err := ExpCostParametric(table, dm)
	if err != nil {
		t.Fatal(err)
	}
	lec, err := AlgorithmC(cat, q, opts, dm)
	if err != nil {
		t.Fatal(err)
	}
	lsc, err := LSCPlan(cat, q, opts, dm, true)
	if err != nil {
		t.Fatal(err)
	}
	if param > lec.Cost*(1+costTol) {
		t.Errorf("parametric %v worse than LEC %v", param, lec.Cost)
	}
	if lec.Cost > lsc.Cost*(1+costTol) {
		t.Errorf("LEC %v worse than LSC %v", lec.Cost, lsc.Cost)
	}
	if !(param < lec.Cost && lec.Cost < lsc.Cost) {
		t.Errorf("expected strict ordering on Example 1.1: param %v, LEC %v, LSC %v",
			param, lec.Cost, lsc.Cost)
	}
}

func TestLookupParamOutOfRange(t *testing.T) {
	table := []ParamInterval{{Lo: 0, Hi: 10}}
	if _, err := LookupParam(table, 11); err == nil {
		t.Error("lookup beyond table succeeded")
	}
	if _, err := ExpCostParametric(table, stats.Point(11)); err == nil {
		t.Error("ExpCostParametric beyond table succeeded")
	}
}
