package opt

// Tests for the unified engine surface itself: the Space × Coster ×
// Objective combinations the pre-engine entry points could not express
// (verified against exhaustive oracles), Config validation, and session
// reuse via SetCoster / Reconfigure.

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/workload"
)

func engineTestInstance(t *testing.T, seed int64, n int) (*catalog.Catalog, *query.SPJ, *stats.Dist) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cat := workload.RandomCatalog(rng, workload.CatalogSpec{NumTables: n})
	q, err := workload.RandomQuery(rng, cat, workload.QuerySpec{
		NumRels: n, Shape: workload.Topology(rng.Intn(3)), OrderBy: true, SelectionProb: 0.3,
	})
	if err != nil {
		t.Fatalf("RandomQuery: %v", err)
	}
	dm := stats.MustNew([]float64{200, 900, 4000}, []float64{0.3, 0.4, 0.3})
	return cat, q, dm
}

// TestBushyExpUtilityMatchesOracle: bushy space × exponential utility. With
// one static distribution every phase draws from it independently, so the
// objective of any tree is the sum of per-node certainty equivalents —
// which ExhaustiveBushy can minimize directly.
func TestBushyExpUtilityMatchesOracle(t *testing.T) {
	for i := 0; i < 6; i++ {
		cat, q, dm := engineTestInstance(t, int64(400+i), 4)
		gamma := 1e-5
		phases := []*stats.Dist{dm}
		got, err := BushyExpUtility(cat, q, Options{}, phases, gamma)
		if err != nil {
			t.Fatalf("instance %d: BushyExpUtility: %v", i, err)
		}
		want, err := ExhaustiveBushy(cat, q, Options{}, func(p plan.Node) float64 {
			return CertaintyEquivalentIndep(p, phases, gamma)
		})
		if err != nil {
			t.Fatalf("instance %d: oracle: %v", i, err)
		}
		if relDiff(got.Cost, want.Cost) > 1e-9 {
			t.Errorf("instance %d: bushy × utility: engine %v vs oracle %v\nengine plan %s\noracle plan %s",
				i, got.Cost, want.Cost, got.Plan.Key(), want.Plan.Key())
		}
	}
}

// evalBushyPhased is the oracle objective for bushy × dynamic parameters:
// scans at access cost, each join charged in expectation under the phase
// distribution of index |S|−2 (S the subset the join computes — the
// engine's order-independent phase convention), and the final sort at the
// last phase.
func evalBushyPhased(root plan.Node, phases []*stats.Dist, n int) float64 {
	total := 0.0
	plan.Walk(root, func(m plan.Node) {
		switch v := m.(type) {
		case *plan.Scan:
			total += v.AccessCost()
		case *plan.Join:
			d := phaseDistAt(phases, v.Rels().Len()-2)
			total += cost.ExpJoinCostMem(v.Method, v.Left.OutPages(), v.Right.OutPages(), d)
		case *plan.Sort:
			if !plan.SatisfiesOrder(v.Input, v.Key_) {
				d := phaseDistAt(phases, n-2)
				pages := v.Input.OutPages()
				total += d.Expect(func(mem float64) float64 { return cost.SortCost(pages, mem) })
			}
		}
	})
	return total
}

// TestBushyDynamicMatchesOracle: bushy space × Markov-phased memory.
func TestBushyDynamicMatchesOracle(t *testing.T) {
	states := []float64{200, 900, 4000}
	chain := stats.MustNewChain(states, [][]float64{
		{0.7, 0.2, 0.1},
		{0.2, 0.6, 0.2},
		{0.1, 0.2, 0.7},
	})
	for i := 0; i < 6; i++ {
		cat, q, dm := engineTestInstance(t, int64(500+i), 4)
		got, err := BushyAlgorithmCDynamic(cat, q, Options{}, chain, dm)
		if err != nil {
			t.Fatalf("instance %d: BushyAlgorithmCDynamic: %v", i, err)
		}
		n := q.NumRels()
		phases := chain.PhaseDists(dm, n-1)
		want, err := ExhaustiveBushy(cat, q, Options{}, func(p plan.Node) float64 {
			return evalBushyPhased(p, phases, n)
		})
		if err != nil {
			t.Fatalf("instance %d: oracle: %v", i, err)
		}
		if relDiff(got.Cost, want.Cost) > 1e-9 {
			t.Errorf("instance %d: bushy × dynamic: engine %v vs oracle %v\nengine plan %s\noracle plan %s",
				i, got.Cost, want.Cost, got.Plan.Key(), want.Plan.Key())
		}
	}
}

// evalPipelinedMV is the oracle objective for pipelined × variance-
// penalized: each join contributes E[cost] + λ·Var[cost] under its pipeline
// phase's distribution, the sort likewise at the last phase.
func evalPipelinedMV(root plan.Node, phases []*stats.Dist, lambda float64) float64 {
	pp := plan.PipelinePhases(root)
	total := 0.0
	joinIdx := 0
	plan.Walk(root, func(m plan.Node) {
		switch v := m.(type) {
		case *plan.Scan:
			total += v.AccessCost()
		case *plan.Join:
			d := phaseDistAt(phases, pp[joinIdx])
			a, b := v.Left.OutPages(), v.Right.OutPages()
			mean, vv := d.ExpectVariance(func(mem float64) float64 { return cost.JoinCost(v.Method, a, b, mem) })
			total += mean + lambda*vv
			joinIdx++
		case *plan.Sort:
			if !plan.SatisfiesOrder(v.Input, v.Key_) {
				last := 0
				if len(pp) > 0 {
					last = pp[len(pp)-1]
				}
				d := phaseDistAt(phases, last)
				pages := v.Input.OutPages()
				mean, vv := d.ExpectVariance(func(mem float64) float64 { return cost.SortCost(pages, mem) })
				total += mean + lambda*vv
			}
		}
	})
	return total
}

// TestPipelinedVariancePenalizedMatchesOracle: pipelined space × risk-
// augmented objective.
func TestPipelinedVariancePenalizedMatchesOracle(t *testing.T) {
	for i := 0; i < 6; i++ {
		cat, q, dm := engineTestInstance(t, int64(600+i), 4)
		lambda := 1e-6
		phases := []*stats.Dist{dm, stats.Point(900)}
		got, err := PipelinedVariancePenalized(cat, q, Options{}, phases, lambda)
		if err != nil {
			t.Fatalf("instance %d: PipelinedVariancePenalized: %v", i, err)
		}
		want, err := Exhaustive(cat, q, Options{}, func(p plan.Node) float64 {
			return evalPipelinedMV(p, phases, lambda)
		})
		if err != nil {
			t.Fatalf("instance %d: oracle: %v", i, err)
		}
		if relDiff(got.Cost, want.Cost) > 1e-9 {
			t.Errorf("instance %d: pipelined × variance: engine %v vs oracle %v\nengine plan %s\noracle plan %s",
				i, got.Cost, want.Cost, got.Plan.Key(), want.Plan.Key())
		}
	}
}

// TestConfigValidation pins the engine's configuration error surface.
func TestConfigValidation(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 321, 3)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero gamma", Config{Coster: StaticParams{Mem: dm}, Objective: ExponentialUtility{Gamma: 0}}},
		{"no phases", Config{Coster: PhasedParams{}, Objective: ExponentialUtility{Gamma: 1e-5}}},
		{"nil coster", Config{}},
		{"multi × utility", Config{Coster: MultiParams{Mem: dm}, Objective: ExponentialUtility{Gamma: 1e-5}}},
		{"multi × variance", Config{Coster: MultiParams{Mem: dm}, Objective: VariancePenalized{Lambda: 1}}},
	}
	for _, c := range cases {
		if _, err := NewOptimizer(cat, q, Options{}, c.cfg); err == nil {
			t.Errorf("%s: NewOptimizer accepted invalid config %+v", c.name, c.cfg)
		}
	}
}

// TestSessionReuse checks that one engine re-run under different costers
// (the Algorithm A/B usage pattern) matches fresh engines bit for bit, and
// that the shared arena actually serves repeat constructions.
func TestSessionReuse(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 654, 4)
	eng, err := NewOptimizer(cat, q, Options{}, Config{Coster: FixedParams{Mem: dm.Value(0)}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < dm.Len(); i++ {
		if err := eng.SetCoster(FixedParams{Mem: dm.Value(i)}); err != nil {
			t.Fatal(err)
		}
		shared, err := eng.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := SystemR(cat, q, Options{}, dm.Value(i))
		if err != nil {
			t.Fatal(err)
		}
		if shared.Plan.Key() != fresh.Plan.Key() || shared.Cost != fresh.Cost {
			t.Errorf("bucket %d: shared session (%s, %v) != fresh engine (%s, %v)",
				i, shared.Plan.Key(), shared.Cost, fresh.Plan.Key(), fresh.Cost)
		}
	}
	st := eng.Stats()
	if st.ArenaHits == 0 {
		t.Errorf("expected arena hits after %d shared runs, got 0 (size %d)", dm.Len(), st.ArenaSize)
	}
	if st.Subsets == 0 || st.JoinSteps == 0 || st.CostEvals == 0 {
		t.Errorf("instrumentation counters not threaded: %+v", st)
	}

	// Reconfigure switches space and objective on the same session.
	if err := eng.Reconfigure(Config{Space: SpaceBushy, Coster: StaticParams{Mem: dm}}); err != nil {
		t.Fatal(err)
	}
	got, err := eng.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	want, err := BushyAlgorithmC(cat, q, Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	if got.Plan.Key() != want.Plan.Key() || got.Cost != want.Cost {
		t.Errorf("reconfigured session (%s, %v) != fresh bushy engine (%s, %v)",
			got.Plan.Key(), got.Cost, want.Plan.Key(), want.Cost)
	}
}

// TestOptimizeTopSpaceGuard: top-c lists are a left-deep-only facility.
func TestOptimizeTopSpaceGuard(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 987, 3)
	eng, err := NewOptimizer(cat, q, Options{}, Config{Space: SpaceBushy, Coster: StaticParams{Mem: dm}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.OptimizeTop(3); err == nil {
		t.Error("OptimizeTop on bushy space should fail")
	}
}
