package opt

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file is the property/metamorphic pass over the observability layer
// and the LEC objective. Each family runs ≥100 randomized cases.

func propShapes(seed int64) workload.Topology {
	return []workload.Topology{workload.Chain, workload.Star, workload.Clique}[seed%3]
}

// TestPropTraceRootsCoverOptimum: the returned plan's expected cost equals
// the minimum over the finished root candidates the decision trace
// enumerated — exactly, not approximately, because the engine's winner is
// chosen from those very candidates. Per-event, the recorded winner never
// costs more than its runner-up, and the gap is their difference.
func TestPropTraceRootsCoverOptimum(t *testing.T) {
	cases := 0
	for seed := int64(0); seed < 60; seed++ {
		for _, orderBy := range []bool{false, true} {
			cat, q := randInstance(t, seed, 3+int(seed%2), propShapes(seed), orderBy)
			dm := randMemDist3(seed)
			res, err := AlgorithmC(cat, q, Options{Trace: true}, dm)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			tr := res.Trace
			if tr == nil {
				t.Fatalf("seed %d: Options.Trace set but no trace attached", seed)
			}
			if len(tr.Roots) == 0 {
				t.Fatalf("seed %d: trace enumerated no root candidates", seed)
			}
			best := math.Inf(1)
			for _, rc := range tr.Roots {
				if rc.Cost < best {
					best = rc.Cost
				}
			}
			if best != res.Cost {
				t.Errorf("seed %d orderBy=%v: min over %d trace roots = %v, engine cost %v",
					seed, orderBy, len(tr.Roots), best, res.Cost)
			}
			if tr.FinalCost != res.Cost {
				t.Errorf("seed %d: trace FinalCost %v != engine cost %v", seed, tr.FinalCost, res.Cost)
			}
			for _, e := range tr.Events {
				if e.RunnerUpMethod == "" {
					continue
				}
				if e.Cost > e.RunnerUpCost*(1+costTol) {
					t.Errorf("seed %d %v: winner %v costs more than runner-up %v", seed, e.Tables, e.Cost, e.RunnerUpCost)
				}
				if math.Abs(e.Gap-(e.RunnerUpCost-e.Cost)) > 1e-9*(1+math.Abs(e.Gap)) {
					t.Errorf("seed %d %v: gap %v != runner-up %v − winner %v", seed, e.Tables, e.Gap, e.RunnerUpCost, e.Cost)
				}
			}
			cases++
		}
	}
	if cases < 100 {
		t.Fatalf("only %d cases, want ≥ 100", cases)
	}
}

// TestPropTraceDisabledIsFree: with tracing and metrics off (the default),
// the engine's decision is byte-identical to a traced run — same cost bits,
// same plan, same instrumentation counters. Tracing observes the search; it
// must never steer it.
func TestPropTraceDisabledIsFree(t *testing.T) {
	cases := 0
	for seed := int64(0); seed < 50; seed++ {
		for _, orderBy := range []bool{false, true} {
			cat, q := randInstance(t, seed, 3+int(seed%2), propShapes(seed), orderBy)
			dm := randMemDist3(seed)
			plain, err := AlgorithmC(cat, q, Options{}, dm)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			traced, err := AlgorithmC(cat, q, Options{Trace: true}, dm)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if plain.Cost != traced.Cost {
				t.Errorf("seed %d: cost %v (plain) != %v (traced)", seed, plain.Cost, traced.Cost)
			}
			if plain.Plan.Key() != traced.Plan.Key() {
				t.Errorf("seed %d: plan %s != %s", seed, plain.Plan.Key(), traced.Plan.Key())
			}
			if plain.Count != traced.Count {
				t.Errorf("seed %d: counters diverge: %+v vs %+v", seed, plain.Count, traced.Count)
			}
			if plain.Trace != nil {
				t.Errorf("seed %d: untraced run attached a trace", seed)
			}
			cases++
		}
	}
	if cases < 100 {
		t.Fatalf("only %d cases, want ≥ 100", cases)
	}
}

// scaleTables scales every table's size statistics by k in place.
func scaleTables(cat *catalog.Catalog, k float64) {
	for _, name := range cat.Names() {
		tab := cat.MustTable(name)
		tab.Pages *= k
		tab.Rows = int64(math.Ceil(float64(tab.Rows) * k))
		if tab.SizeDist != nil {
			tab.SizeDist = tab.SizeDist.Scale(k)
		}
	}
}

// TestPropCardinalityScaleUpNeverCheaper: scaling every base relation up by
// a common factor never decreases the chosen expected cost.
//
// Note this is deliberately weaker than "cardinality-scaling invariance"
// (cost scaling linearly with input size): that is FALSE for this cost
// model, whose join formulas have level-set boundaries at √size and size^¼
// — scaling the inputs moves different plans across different boundaries,
// so the optimum is not scale-equivariant and can even switch plans. What
// IS a theorem: every cost formula is non-decreasing in its input sizes, so
// every fixed plan gets no cheaper, so the minimum over the (unchanged)
// plan space gets no cheaper.
func TestPropCardinalityScaleUpNeverCheaper(t *testing.T) {
	cases := 0
	for seed := int64(0); seed < 50; seed++ {
		for _, k := range []float64{2, 16} {
			cat, q := randInstance(t, seed, 3+int(seed%2), propShapes(seed), seed%2 == 0)
			dm := randMemDist3(seed)
			orig, err := AlgorithmC(cat, q, Options{}, dm)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			scaleTables(cat, k)
			scaled, err := AlgorithmC(cat, q, Options{}, dm)
			if err != nil {
				t.Fatalf("seed %d scaled: %v", seed, err)
			}
			if scaled.Cost < orig.Cost*(1-costTol) {
				t.Errorf("seed %d k=%v: scaled-up instance got cheaper: %v < %v", seed, k, scaled.Cost, orig.Cost)
			}
			cases++
		}
	}
	if cases < 100 {
		t.Fatalf("only %d cases, want ≥ 100", cases)
	}
}

// TestPropMemoryScaleUpNeverWorse: scaling the memory distribution's
// support up by k ≥ 1 never increases the chosen expected cost — every cost
// formula is non-increasing in buffer memory, pointwise per bucket, so
// every plan's expectation drops or holds and so does the minimum.
func TestPropMemoryScaleUpNeverWorse(t *testing.T) {
	cases := 0
	for seed := int64(0); seed < 50; seed++ {
		for _, k := range []float64{1.5, 8} {
			cat, q := randInstance(t, seed, 3+int(seed%2), propShapes(seed), seed%2 == 1)
			dm := randMemDist3(seed)
			base, err := AlgorithmC(cat, q, Options{}, dm)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			up, err := AlgorithmC(cat, q, Options{}, dm.Scale(k))
			if err != nil {
				t.Fatalf("seed %d scaled: %v", seed, err)
			}
			if up.Cost > base.Cost*(1+costTol) {
				t.Errorf("seed %d k=%v: more memory made the optimum worse: %v > %v", seed, k, up.Cost, base.Cost)
			}
			cases++
		}
	}
	if cases < 100 {
		t.Fatalf("only %d cases, want ≥ 100", cases)
	}
}

// TestPropWeightScaleInvariance: the memory distribution normalizes its
// weights, so multiplying every raw weight by a common positive factor is
// exactly the same distribution and must produce the same decision.
func TestPropWeightScaleInvariance(t *testing.T) {
	cases := 0
	for seed := int64(0); seed < 50; seed++ {
		for _, c := range []float64{0.25, 1000} {
			cat, q := randInstance(t, seed, 3+int(seed%2), propShapes(seed), seed%2 == 0)
			dm := randMemDist3(seed)
			vals := make([]float64, dm.Len())
			w := make([]float64, dm.Len())
			for i := 0; i < dm.Len(); i++ {
				vals[i] = dm.Value(i)
				w[i] = dm.Prob(i) * c
			}
			dm2 := stats.MustNew(vals, w)
			a, err := AlgorithmC(cat, q, Options{}, dm)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			b, err := AlgorithmC(cat, q, Options{}, dm2)
			if err != nil {
				t.Fatalf("seed %d rescaled: %v", seed, err)
			}
			if relDiff(a.Cost, b.Cost) > 1e-12 {
				t.Errorf("seed %d c=%v: weight scaling changed the cost: %v vs %v", seed, c, a.Cost, b.Cost)
			}
			if a.Plan.Key() != b.Plan.Key() {
				t.Errorf("seed %d c=%v: weight scaling changed the plan", seed, c)
			}
			cases++
		}
	}
	if cases < 100 {
		t.Fatalf("only %d cases, want ≥ 100", cases)
	}
}
