package opt

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// This file lifts System R's heuristic 2 (paper §2.2): instead of requiring
// every join to add exactly one stored relation (left-deep plans), the
// bushy dynamic program considers every way to split a subset into two
// disjoint sub-results. The paper's concluding remarks (§4) name bushy
// trees as the main search-space restriction; this extension quantifies
// what the restriction gives up (experiment E11). Bushy optimization is
// limited to static objectives — with parallel subtrees the paper's
// phase-sequence model (§3.5) has no natural single phase order, and the
// paper itself leaves the parallelism/memory interaction open.

// bushyCoster prices one join or sort step from input sizes alone.
type bushyCoster interface {
	join(m cost.Method, aPages, bPages float64) float64
	sort(pages float64) float64
}

type bushyFixed struct {
	ctx *Context
	mem float64
}

func (b bushyFixed) join(m cost.Method, a, bp float64) float64 {
	b.ctx.Count.CostEvals++
	return cost.JoinCost(m, a, bp, b.mem)
}

func (b bushyFixed) sort(pages float64) float64 {
	b.ctx.Count.CostEvals++
	return cost.SortCost(pages, b.mem)
}

type bushyExp struct {
	ctx *Context
	dm  *stats.Dist
}

func (b bushyExp) join(m cost.Method, a, bp float64) float64 {
	b.ctx.Count.CostEvals += b.dm.Len()
	return cost.ExpJoinCostMem(m, a, bp, b.dm)
}

func (b bushyExp) sort(pages float64) float64 {
	b.ctx.Count.CostEvals += b.dm.Len()
	return b.dm.Expect(func(mem float64) float64 { return cost.SortCost(pages, mem) })
}

// bushyDP runs the all-splits dynamic program. Because the per-subset size
// estimates are order-independent, the principle of optimality holds for
// bushy trees exactly as for left-deep ones, and the DP returns the optimal
// bushy plan under the coster's objective.
func bushyDP(ctx *Context, bc bushyCoster) (*Result, error) {
	n := ctx.Q.NumRels()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty query")
	}
	if n == 1 {
		// Same as the left-deep single-relation case.
		return finishSingle(ctx, sortOnly{bc})
	}
	best := make(map[query.RelSet]dpEntry, 1<<uint(n))
	for i := 0; i < n; i++ {
		s := ctx.BestScan(i)
		best[query.NewRelSet(i)] = dpEntry{node: s, cost: s.AccessCost()}
	}
	full := query.FullSet(n)
	rootBest := dpEntry{cost: math.Inf(1)}
	var rootFound bool

	for d := 2; d <= n; d++ {
		query.SubsetsOfSize(n, d, func(s query.RelSet) {
			entry := dpEntry{cost: math.Inf(1)}
			lowest := query.NewRelSet(s.Members()[0])
			for l := (s - 1) & s; l != 0; l = (l - 1) & s {
				if !l.Contains(lowest) {
					continue // canonical split; operand orders handled below
				}
				r := s &^ l
				le, lok := best[l]
				re, rok := best[r]
				if !lok || !rok {
					continue
				}
				if ctx.Opts.AvoidCrossProducts && len(ctx.predsBetween(l, r)) == 0 && !crossUnavoidable(ctx, s) {
					continue
				}
				base := le.cost + re.cost
				for _, m := range ctx.Opts.methods() {
					for _, ord := range [2][2]dpEntry{{le, re}, {re, le}} {
						stepCost := bc.join(m, ord[0].node.OutPages(), ord[1].node.OutPages())
						total := base + stepCost
						if total < entry.cost {
							entry = dpEntry{
								node: ctx.newBushyJoin(ord[0].node, ord[1].node, m, s),
								cost: total,
							}
						}
						if s == full {
							cand := ctx.newBushyJoin(ord[0].node, ord[1].node, m, s)
							finished, added := ctx.FinishPlan(cand)
							ft := total
							if added {
								ft += bc.sort(cand.OutPages())
							}
							if ft < rootBest.cost {
								rootBest = dpEntry{node: finished, cost: ft}
								rootFound = true
							}
						}
					}
				}
			}
			if !math.IsInf(entry.cost, 1) {
				best[s] = entry
			}
		})
	}
	if !rootFound {
		return nil, fmt.Errorf("opt: bushy DP found no plan")
	}
	return &Result{Plan: rootBest.node, Cost: rootBest.cost, Count: ctx.Count}, nil
}

// crossUnavoidable reports whether every split of s crosses a predicate-free
// boundary (disconnected join graph inside s), in which case cross products
// must be allowed.
func crossUnavoidable(ctx *Context, s query.RelSet) bool {
	return !ctx.Q.Connected(s)
}

// sortOnly adapts a bushyCoster to the stepCoster shape needed by
// finishSingle (only sortStep is ever called there).
type sortOnly struct{ bc bushyCoster }

func (s sortOnly) joinStep(cost.Method, plan.Node, *plan.Scan, query.RelSet, int, int) float64 {
	panic("opt: joinStep on single-relation query")
}

func (s sortOnly) sortStep(input plan.Node, _ int) float64 {
	return s.bc.sort(input.OutPages())
}

// BushySystemR returns the least-cost bushy plan at a fixed memory value.
func BushySystemR(cat *catalog.Catalog, q *query.SPJ, opts Options, mem float64) (*Result, error) {
	ctx, err := NewContext(cat, q, opts)
	if err != nil {
		return nil, err
	}
	return bushyDP(ctx, bushyFixed{ctx: ctx, mem: mem})
}

// BushyAlgorithmC returns the bushy LEC plan under a static memory
// distribution: Algorithm C with heuristic 2 removed.
func BushyAlgorithmC(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	ctx, err := NewContext(cat, q, opts)
	if err != nil {
		return nil, err
	}
	return bushyDP(ctx, bushyExp{ctx: ctx, dm: dm})
}
