package opt

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/query"
	"repro/internal/stats"
)

// This file lifts System R's heuristic 2 (paper §2.2): instead of requiring
// every join to add exactly one stored relation (left-deep plans), the
// bushy dynamic program considers every way to split a subset into two
// disjoint sub-results. The paper's concluding remarks (§4) name bushy
// trees as the main search-space restriction; this extension quantifies
// what the restriction gives up (experiment E11). The DP is generic in the
// same stepPricer as the left-deep engine, so every decomposable objective
// — fixed, expected, phased, certainty-equivalent, variance-penalized —
// searches bushy space too. A join forming a subset of size d is charged at
// phase d−2: the depth at which the left-deep walk would execute it, and an
// order-independent function of the subset, which keeps the DP exact.

// runBushy runs the all-splits dynamic program. Because the per-subset size
// estimates are order-independent, the principle of optimality holds for
// bushy trees exactly as for left-deep ones, and the DP returns the optimal
// bushy plan under the pricer's objective.
func (o *Optimizer) runBushy() (*Result, error) {
	ctx, pr := o.ctx, o.pricer
	n := ctx.Q.NumRels()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty query")
	}
	if n == 1 {
		// Same as the left-deep single-relation case.
		return finishSingle(ctx, pr)
	}
	best := o.dpTable(n)
	for i := 0; i < n; i++ {
		s := ctx.BestScan(i)
		best.put(query.NewRelSet(i), dpEntry{node: s, cost: s.AccessCost()})
	}
	full := query.FullSet(n)
	rootBest := dpEntry{cost: math.Inf(1)}
	var rootFound bool
	bp := batchFor(pr)

	for d := 2; d <= n && !ctx.stopped(); d++ {
		ctx.forEachLevel(d, func(s query.RelSet) {
			r := o.solveBushy(ctx, pr, bp, best, s, d, full)
			applySubset(ctx, best, s, &r, &rootBest, &rootFound)
		})
	}
	return o.finishBushy(ctx, rootBest, rootFound)
}

// solveBushy solves one lattice node of the all-splits DP: every canonical
// split of s priced in both operand orders, and — at the full set — the
// finished root candidates. Like solveLeftDeep it reads only fully-solved
// lower levels of best and writes nothing shared. The bushy DP records no
// trace events.
func (o *Optimizer) solveBushy(ctx *Context, pr stepPricer, bp batchStepPricer, best *dpTab, s query.RelSet, d int, full query.RelSet) subsetResult {
	res := subsetResult{entry: dpEntry{cost: math.Inf(1)}, rootBest: dpEntry{cost: math.Inf(1)}}
	if !ctx.visitSubset() {
		return res
	}
	methods := ctx.Opts.Methods
	lowest := query.NewRelSet(s.Members()[0])
	for l := (s - 1) & s; l != 0 && !ctx.stopped(); l = (l - 1) & s {
		if !l.Contains(lowest) {
			continue // canonical split; operand orders handled below
		}
		r := s &^ l
		// Under the connected enumerator only connected halves were ever
		// solved; a split across a disconnected boundary finds an empty
		// entry and is skipped, which is the csg/cmp-pair restriction.
		le, re := best.get(l), best.get(r)
		if le.node == nil || re.node == nil {
			continue
		}
		if ctx.Opts.AvoidCrossProducts && !ctx.connected(l, r) && !crossUnavoidable(ctx, s) {
			continue
		}
		base := le.cost + re.cost
		// One batch per operand order: the batched kernel's values depend on
		// (left, right), and both orders are priced per method.
		var mbs [2]methodBatch
		for _, m := range methods {
			for oi, ord := range [2][2]dpEntry{{le, re}, {re, le}} {
				ctx.Count.JoinSteps++
				var stepCost float64
				if bp != nil {
					stepCost = ctx.priceJoinBatched(bp, &mbs[oi], m, ord[0].node, ord[1].node, s, d-2)
				} else {
					stepCost = ctx.priceJoin(pr, m, ord[0].node, ord[1].node, s, d-2)
				}
				total := base + stepCost
				if total < res.entry.cost {
					res.entry.cost = total
					res.win = winStep{left: ord[0].node, right: ord[1].node, m: m}
				} else {
					ctx.Count.Prunes++
				}
				if s == full {
					cand := ctx.newBushyJoin(ord[0].node, ord[1].node, m, s)
					finished, added := ctx.FinishPlan(cand)
					ft := total
					if added {
						ft += ctx.priceSort(pr, cand, d-2)
					}
					if ft < res.rootBest.cost {
						res.rootBest = dpEntry{node: finished, cost: ft}
						res.rootFound = true
					}
				}
			}
		}
	}
	return res
}

// finishBushy is the bushy drivers' shared epilogue.
func (o *Optimizer) finishBushy(ctx *Context, rootBest dpEntry, rootFound bool) (*Result, error) {
	if ctx.stopped() {
		if rootFound {
			return &Result{Plan: rootBest.node, Cost: rootBest.cost, Count: ctx.snapshotCount()}, nil
		}
		return nil, ctx.stopCause
	}
	if !rootFound {
		return nil, fmt.Errorf("opt: bushy DP found no plan")
	}
	return &Result{Plan: rootBest.node, Cost: rootBest.cost, Count: ctx.snapshotCount()}, nil
}

// crossUnavoidable reports whether every split of s crosses a predicate-free
// boundary (disconnected join graph inside s), in which case cross products
// must be allowed.
func crossUnavoidable(ctx *Context, s query.RelSet) bool {
	return !ctx.Q.Connected(s)
}

// BushySystemR returns the least-cost bushy plan at a fixed memory value.
func BushySystemR(cat *catalog.Catalog, q *query.SPJ, opts Options, mem float64) (*Result, error) {
	eng, err := NewOptimizer(cat, q, opts, Config{Space: SpaceBushy, Coster: FixedParams{Mem: mem}})
	if err != nil {
		return nil, err
	}
	return eng.Optimize()
}

// BushyAlgorithmC returns the bushy LEC plan under a static memory
// distribution: Algorithm C with heuristic 2 removed.
func BushyAlgorithmC(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	eng, err := NewOptimizer(cat, q, opts, Config{Space: SpaceBushy, Coster: StaticParams{Mem: dm}})
	if err != nil {
		return nil, err
	}
	return eng.Optimize()
}

// BushyExpUtility returns the bushy plan minimizing the exponential-utility
// certainty equivalent — a Space × Objective combination the pre-engine
// entry points could not express. phases follows the same convention as
// ExpUtilityDP; a single static distribution means every phase draws from
// it independently.
func BushyExpUtility(cat *catalog.Catalog, q *query.SPJ, opts Options, phases []*stats.Dist, gamma float64) (*Result, error) {
	eng, err := NewOptimizer(cat, q, opts, Config{
		Space:     SpaceBushy,
		Coster:    PhasedParams{Phases: phases},
		Objective: ExponentialUtility{Gamma: gamma},
	})
	if err != nil {
		return nil, err
	}
	return eng.Optimize()
}

// BushyAlgorithmCDynamic returns the bushy LEC plan when memory evolves by
// a Markov chain — dynamic parameters × bushy space, likewise newly
// expressible. Each join is charged at phase |S|−2 of the unrolled chain.
func BushyAlgorithmCDynamic(cat *catalog.Catalog, q *query.SPJ, opts Options, chain *stats.Chain, initial *stats.Dist) (*Result, error) {
	eng, err := NewOptimizer(cat, q, opts, Config{Space: SpaceBushy, Coster: MarkovParams{Chain: chain, Initial: initial}})
	if err != nil {
		return nil, err
	}
	return eng.Optimize()
}
