package opt

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/workload"
)

// aggInstance builds a join with a GROUP BY whose group table is large
// enough that the hash-vs-sort aggregation choice is memory-sensitive.
func aggInstance(t *testing.T, seed int64, orderBy bool) (*catalog.Catalog, *query.SPJ) {
	t.Helper()
	cat, q := randInstance(t, seed, 3, workload.Chain, false)
	gb := query.ColumnRef{Table: q.Tables[0], Column: "fk"}
	q.GroupBy = &gb
	if orderBy {
		ob := gb
		q.OrderBy = &ob
	}
	return cat, q
}

func TestAggregationMatchesExhaustive(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cat, q := aggInstance(t, seed, seed%2 == 0)
		dm := randMemDist3(seed + 5100)
		got, err := OptimizeWithAggregation(cat, q, Options{TopC: 512}, dm)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := ExhaustiveWithAggregation(cat, q, Options{}, dm)
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(got.Cost, want.Cost) > costTol {
			t.Errorf("seed %d: aggregation opt %v != exhaustive %v\ngot:\n%s\nwant:\n%s",
				seed, got.Cost, want.Cost, plan.Explain(got.Plan), plan.Explain(want.Plan))
		}
	}
}

func TestAggregationPlanShape(t *testing.T) {
	cat, q := aggInstance(t, 3, true)
	dm := randMemDist3(42)
	res, err := OptimizeWithAggregation(cat, q, Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	// The plan contains exactly one aggregate over the group key, and the
	// ORDER BY (same column) is satisfied.
	aggs := 0
	plan.Walk(res.Plan, func(n plan.Node) {
		if a, ok := n.(*plan.Aggregate); ok {
			aggs++
			if a.GroupKey != *q.GroupBy {
				t.Errorf("aggregate key %v, want %v", a.GroupKey, *q.GroupBy)
			}
			if a.Groups <= 0 || a.Pages <= 0 {
				t.Errorf("aggregate estimates %v groups / %v pages", a.Groups, a.Pages)
			}
		}
	})
	if aggs != 1 {
		t.Fatalf("%d aggregates in plan", aggs)
	}
	if !plan.SatisfiesOrder(res.Plan, *q.OrderBy) {
		t.Errorf("ORDER BY not satisfied:\n%s", plan.Explain(res.Plan))
	}
}

// TestAggregateMethodFollowsMemory: with abundant memory hash aggregation
// is free and wins; when the group table cannot fit, sort aggregation (or
// spilled hash) competes and an ORDER BY tips the balance to sort-agg.
func TestAggregateMethodFollowsMemory(t *testing.T) {
	// Catalog with a very large group count so the group table is big.
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{
		Name: "f", Rows: 10_000_000, Pages: 1_000_000,
		Columns: []*catalog.Column{
			{Name: "id", Distinct: 10_000_000},
			{Name: "g", Distinct: 8_000_000},
		},
	})
	gb := query.ColumnRef{Table: "f", Column: "g"}
	q := &query.SPJ{Tables: []string{"f"}, GroupBy: &gb, OrderBy: &gb}

	method := func(dm *stats.Dist) plan.AggMethod {
		res, err := OptimizeWithAggregation(cat, q, Options{}, dm)
		if err != nil {
			t.Fatal(err)
		}
		var m plan.AggMethod = -1
		plan.Walk(res.Plan, func(n plan.Node) {
			if a, ok := n.(*plan.Aggregate); ok {
				m = a.Method
			}
		})
		return m
	}
	// Group table ≈ 8e6/256 ≈ 31k pages. Even at tight memory, spilling the
	// hash aggregate (2·|input|) and sorting the *small* group table beats
	// sorting the whole million-page input — hash-agg wins on an unsorted
	// input regardless of memory (the groups are much smaller than the
	// input).
	if m := method(stats.Point(50)); m != plan.HashAgg {
		t.Errorf("unsorted input: %v, want hash-agg", m)
	}

	// With a clustered index on g, the input arrives in group order: sort
	// aggregation is entirely free (and delivers the ORDER BY), so it wins.
	cat2 := catalog.New()
	cat2.MustAdd(&catalog.Table{
		Name: "f", Rows: 10_000_000, Pages: 1_000_000,
		Columns: []*catalog.Column{
			{Name: "id", Distinct: 10_000_000},
			{Name: "g", Distinct: 8_000_000},
		},
		Indexes: []*catalog.Index{{Name: "f_g", Column: "g", Clustered: true, Height: 3}},
	})
	res, err := OptimizeWithAggregation(cat2, q, Options{}, stats.Point(50))
	if err != nil {
		t.Fatal(err)
	}
	var m plan.AggMethod = -1
	sortedInput := false
	plan.Walk(res.Plan, func(n plan.Node) {
		if a, ok := n.(*plan.Aggregate); ok {
			m = a.Method
			sortedInput = a.InputSorted()
		}
	})
	if m != plan.SortAgg || !sortedInput {
		t.Errorf("clustered-index input: method %v (sorted=%v), want free sort-agg\n%s",
			m, sortedInput, plan.Explain(res.Plan))
	}
}

// TestAggregationLECBeatsLSC hunts for an instance where the distribution-
// aware aggregate choice beats the point-estimate choice.
func TestAggregationLECBeatsLSC(t *testing.T) {
	found := false
	for seed := int64(0); seed < 40 && !found; seed++ {
		cat, q := aggInstance(t, seed, seed%2 == 0)
		dm := randMemDist3(seed + 5200)
		lec, err := OptimizeWithAggregation(cat, q, Options{}, dm)
		if err != nil {
			t.Fatal(err)
		}
		lscRes, err := OptimizeWithAggregation(cat, q, Options{}, stats.Point(dm.Mean()))
		if err != nil {
			t.Fatal(err)
		}
		lscUnderDist := plan.ExpCost(lscRes.Plan, dm)
		if lscUnderDist > lec.Cost*(1+1e-9) {
			found = true
			t.Logf("seed %d: LSC agg plan %v vs LEC %v", seed, lscUnderDist, lec.Cost)
		}
	}
	if !found {
		t.Error("no instance where distribution-aware aggregation helped")
	}
}

func TestAggregationValidation(t *testing.T) {
	cat, q := randInstance(t, 1, 3, workload.Chain, false)
	if _, err := OptimizeWithAggregation(cat, q, Options{}, stats.Point(100)); err == nil {
		t.Error("query without GROUP BY accepted")
	}
	gb := query.ColumnRef{Table: q.Tables[0], Column: "ghost"}
	q.GroupBy = &gb
	if _, err := OptimizeWithAggregation(cat, q, Options{}, stats.Point(100)); err == nil {
		t.Error("unknown group column accepted")
	}
	if _, err := ExhaustiveWithAggregation(cat, q, Options{}, stats.Point(100)); err == nil {
		t.Error("exhaustive accepted unknown group column")
	}
	q.GroupBy = nil
	if _, err := ExhaustiveWithAggregation(cat, q, Options{}, stats.Point(100)); err == nil {
		t.Error("exhaustive accepted missing GROUP BY")
	}
	// ORDER BY must match GROUP BY.
	gb2 := query.ColumnRef{Table: q.Tables[0], Column: "fk"}
	ob := query.ColumnRef{Table: q.Tables[0], Column: "id"}
	q.GroupBy, q.OrderBy = &gb2, &ob
	if err := q.Validate(cat); err == nil {
		t.Error("mismatched ORDER BY / GROUP BY accepted")
	}
}

func TestAggMethodString(t *testing.T) {
	if plan.HashAgg.String() != "hash-agg" || plan.SortAgg.String() != "sort-agg" {
		t.Error("AggMethod strings wrong")
	}
	if plan.AggMethod(9).String() == "" {
		t.Error("unknown AggMethod empty")
	}
}
