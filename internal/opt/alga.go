package opt

import (
	"context"
	"math"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// AlgorithmA implements paper §3.2: use a standard optimizer as a black
// box. "For each value m_i of the memory parameter, we run the optimizer
// under the assumption that m_i is the actual amount of memory available.
// This gives us b candidate plans. We then compute the expected cost of
// each candidate, and choose the one with least expected cost."
//
// The bucket representatives are dm's support points and the expected cost
// is taken under dm itself. The returned Result's Cost is the expected cost
// of the chosen plan. Algorithm A is an approximation: the true LEC plan
// may be optimal for none of the m_i and therefore never generated
// (see TestAlgorithmAIsNotExact).
func AlgorithmA(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	return AlgorithmACtx(context.Background(), cat, q, opts, dm)
}

// algorithmACandidates runs the black-box optimizer once per bucket
// representative and returns the (deduplicated) candidate plans. All b
// invocations share one engine session — only the coster changes between
// buckets — so the memo tables, plan arena, and DP table are reused.
func algorithmACandidates(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) ([]plan.Node, Counters, error) {
	cands, counters, _, _, err := algorithmACandidatesCtx(context.Background(), cat, q, opts, dm)
	return cands, counters, err
}

// pickLeastExpected evaluates E[Φ] for each candidate under dm and returns
// the winner. This is Algorithm A's costing phase; the paper notes its cost
// is "much smaller than the cost of candidate generation".
func pickLeastExpected(cands []plan.Node, dm *stats.Dist) (plan.Node, float64) {
	var best plan.Node
	bestCost := math.Inf(1)
	for _, c := range cands {
		ec := plan.ExpCost(c, dm)
		if ec < bestCost {
			best, bestCost = c, ec
		}
	}
	return best, bestCost
}

// LSCPlan returns the plan the traditional approach would choose: optimize
// once at a representative value of the distribution (its mean by default,
// its mode if useMode is set), per the paper's §1: "Current optimizers
// simply approximate each distribution by using the mean or modal value."
// The returned Result's Cost is that plan's *expected* cost under dm, so it
// is directly comparable with the LEC optimizers' results.
func LSCPlan(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist, useMode bool) (*Result, error) {
	rep := dm.Mean()
	if useMode {
		rep = dm.Mode()
	}
	res, err := SystemR(cat, q, opts, rep)
	if err != nil {
		return nil, err
	}
	return &Result{Plan: res.Plan, Cost: plan.ExpCost(res.Plan, dm), Count: res.Count}, nil
}
