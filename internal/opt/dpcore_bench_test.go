package opt

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

// BenchmarkDPCore measures the unified dynamic-programming core on
// 10-relation queries across the three canonical join-graph topologies.
// ns/op and allocs/op here are the numbers CHANGES.md tracks across the
// arena/memo-reuse work: the DP over a 10-relation lattice enumerates
// 2^10 subsets and is the optimizer's hot path.
func BenchmarkDPCore(b *testing.B) {
	dm := stats.MustNew(
		[]float64{200, 700, 1500, 3000, 6000},
		[]float64{0.1, 0.2, 0.4, 0.2, 0.1})
	for _, shape := range []workload.Topology{workload.Chain, workload.Star, workload.Clique} {
		rng := rand.New(rand.NewSource(7))
		cat := workload.RandomCatalog(rng, workload.CatalogSpec{NumTables: 10})
		q, err := workload.RandomQuery(rng, cat, workload.QuerySpec{NumRels: 10, Shape: shape, OrderBy: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("algC/%v", shape), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := AlgorithmC(cat, q, Options{}, dm); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("systemR/%v", shape), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SystemR(cat, q, Options{}, dm.Mean()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Algorithm A re-runs the DP once per memory bucket; this is where
	// memo-table and arena reuse across bucket invocations pays off.
	rng := rand.New(rand.NewSource(7))
	cat := workload.RandomCatalog(rng, workload.CatalogSpec{NumTables: 10})
	q, err := workload.RandomQuery(rng, cat, workload.QuerySpec{NumRels: 10, Shape: workload.Chain, OrderBy: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("algA/chain-buckets", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := AlgorithmA(cat, q, Options{}, dm); err != nil {
				b.Fatal(err)
			}
		}
	})
}
