package opt

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

// BenchmarkDPCore measures the unified dynamic-programming core on
// 10-relation queries across the three canonical join-graph topologies.
// ns/op and allocs/op here are the numbers CHANGES.md tracks across the
// arena/memo-reuse work: the DP over a 10-relation lattice enumerates
// 2^10 subsets and is the optimizer's hot path.
func BenchmarkDPCore(b *testing.B) {
	dm := stats.MustNew(
		[]float64{200, 700, 1500, 3000, 6000},
		[]float64{0.1, 0.2, 0.4, 0.2, 0.1})
	for _, shape := range []workload.Topology{workload.Chain, workload.Star, workload.Clique} {
		rng := rand.New(rand.NewSource(7))
		cat := workload.RandomCatalog(rng, workload.CatalogSpec{NumTables: 10})
		q, err := workload.RandomQuery(rng, cat, workload.QuerySpec{NumRels: 10, Shape: shape, OrderBy: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("algC/%v", shape), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := AlgorithmC(cat, q, Options{}, dm); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("systemR/%v", shape), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SystemR(cat, q, Options{}, dm.Mean()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Algorithm A re-runs the DP once per memory bucket; this is where
	// memo-table and arena reuse across bucket invocations pays off.
	rng := rand.New(rand.NewSource(7))
	cat := workload.RandomCatalog(rng, workload.CatalogSpec{NumTables: 10})
	q, err := workload.RandomQuery(rng, cat, workload.QuerySpec{NumRels: 10, Shape: workload.Chain, OrderBy: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("algA/chain-buckets", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := AlgorithmA(cat, q, Options{}, dm); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDPCoreLargeN measures the connected (csg) enumerator past the
// exhaustive engine's practical wall. A chain or cycle of n relations has
// only O(n²) connected subgraphs, so the graph-aware DP solves n = 30 in
// thousands of memo entries where the 2^30 lattice is out of reach; a star's
// connected family is still 2^(n-1), so the star rows stop at n = 20 and
// chart how the enumerator degrades toward exhaustive on dense-centered
// graphs. Exhaustive rows are included only where they finish in reasonable
// time (n = 15).
func BenchmarkDPCoreLargeN(b *testing.B) {
	dm := stats.MustNew(
		[]float64{200, 700, 1500, 3000, 6000},
		[]float64{0.1, 0.2, 0.4, 0.2, 0.1})
	type row struct {
		shape workload.Topology
		n     int
		enum  Enumeration
	}
	rows := []row{
		{workload.Chain, 15, EnumExhaustive},
		{workload.Chain, 15, EnumConnected},
		{workload.Chain, 20, EnumConnected},
		{workload.Chain, 30, EnumConnected},
		{workload.Cycle, 15, EnumConnected},
		{workload.Cycle, 20, EnumConnected},
		{workload.Cycle, 30, EnumConnected},
		{workload.Star, 15, EnumExhaustive},
		{workload.Star, 15, EnumConnected},
		{workload.Star, 20, EnumConnected},
	}
	for _, r := range rows {
		rng := rand.New(rand.NewSource(7))
		cat := workload.RandomCatalog(rng, workload.CatalogSpec{NumTables: r.n})
		q, err := workload.RandomQuery(rng, cat, workload.QuerySpec{NumRels: r.n, Shape: r.shape, OrderBy: true})
		if err != nil {
			b.Fatal(err)
		}
		opts := Options{Enumeration: r.enum}
		b.Run(fmt.Sprintf("algC/%v/n%d/%v", r.shape, r.n, r.enum), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := AlgorithmC(cat, q, opts, dm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDPCoreParallel measures the level-synchronized parallel driver
// against the same workloads. Parallelism tracks GOMAXPROCS, so running
// with -cpu 1,2,4 sweeps the sequential engine (the driver falls back to
// the plain DP at parallelism 1) through 2- and 4-worker pools; the
// speedup is the ns/op ratio between the -cpu rows. Both sizes matter:
// n=6 is where scheduling overhead must stay paid-for, n=10 is where the
// 2^n lattice gives the workers real work.
func BenchmarkDPCoreParallel(b *testing.B) {
	dm := stats.MustNew(
		[]float64{200, 700, 1500, 3000, 6000},
		[]float64{0.1, 0.2, 0.4, 0.2, 0.1})
	for _, shape := range []workload.Topology{workload.Chain, workload.Star, workload.Clique} {
		for _, n := range []int{6, 10} {
			rng := rand.New(rand.NewSource(7))
			cat := workload.RandomCatalog(rng, workload.CatalogSpec{NumTables: n})
			q, err := workload.RandomQuery(rng, cat, workload.QuerySpec{NumRels: n, Shape: shape, OrderBy: true})
			if err != nil {
				b.Fatal(err)
			}
			opts := Options{Parallelism: runtime.GOMAXPROCS(0)}
			b.Run(fmt.Sprintf("algC/%v/n%d", shape, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := AlgorithmC(cat, q, opts, dm); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
