package opt

// Benchmarks and latency-budget assertions for the tiered planner.
//
// BenchmarkTieredPlanning covers the three regimes the tier controller can
// land in:
//
//   - greedy/*    — tier pinned to greedy: the pure fast path, including
//                   optimizer construction and the lower-bound gap probe.
//                   These are the sub-100µs targets.
//   - escalate/*  — tier auto on an instance whose greedy gap blows the
//                   risk threshold: pays greedy + bound + the full DP.
//   - mixed/*     — a 10-query workload (8 low-risk, 2 high-risk) planned
//                   with tier auto vs. always-DP; the ratio of the two is
//                   the headline win of the fast path.
//
// The companion tests assert the budgets outright so the claim is enforced
// by `go test`, not just observable in bench output: greedy plans chain and
// star joins at n∈{10,20} under 100µs median, and the mixed workload's
// median planning latency is ≥10× lower under tier auto than always-DP.
// Both skip under -race (instrumentation inflates latency ~10×).

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/workload"
)

// tierBenchDist matches the BenchmarkDPCore memory distribution so tier
// rows in the bench-smoke baseline are comparable with the DP-core rows.
func tierBenchDist() *stats.Dist {
	return stats.MustNew(
		[]float64{200, 700, 1500, 3000, 6000},
		[]float64{0.1, 0.2, 0.4, 0.2, 0.1})
}

type tierBenchInstance struct {
	name string
	cat  *catalog.Catalog
	q    *query.SPJ
}

// tierMixedWorkload is a deterministic 10-query mix: eight instances whose
// greedy gap clears the default risk threshold (served from the fast path)
// and two whose gap does not (escalate to the DP). The seeds are pinned so
// the serve/escalate split is stable; TestTierMixedWorkloadSpeedup verifies
// the split rather than trusting it.
func tierMixedWorkload(t testing.TB) []tierBenchInstance {
	specs := []struct {
		shape workload.Topology
		seed  int64
	}{
		{workload.Chain, 0}, {workload.Chain, 1}, {workload.Chain, 4},
		{workload.Star, 0}, {workload.Star, 1}, {workload.Star, 7},
		{workload.Clique, 0}, {workload.Clique, 4},
		// High-gap instances: greedy misses the optimum badly enough that
		// the controller must escalate.
		{workload.Chain, 2}, {workload.Star, 3},
	}
	out := make([]tierBenchInstance, 0, len(specs))
	for _, sp := range specs {
		cat, q := randInstance(t, sp.seed, 10, sp.shape, false)
		out = append(out, tierBenchInstance{
			name: sp.shape.String(), cat: cat, q: q,
		})
	}
	return out
}

func BenchmarkTieredPlanning(b *testing.B) {
	dm := tierBenchDist()

	for _, shape := range []workload.Topology{workload.Chain, workload.Star} {
		for _, n := range []int{10, 20} {
			cat, q := randInstance(b, 7, n, shape, false)
			b.Run(fmt.Sprintf("greedy/%v/n%d", shape, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Tiered(cat, q, Options{Tier: TierGreedy}, dm); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	// Star seed 3 at n=10 has a greedy gap far above the default threshold:
	// every request pays greedy + lower bound + the full DP.
	escCat, escQ := randInstance(b, 3, 10, workload.Star, false)
	b.Run("escalate/star/n10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := Tiered(escCat, escQ, Options{}, dm)
			if err != nil {
				b.Fatal(err)
			}
			if res.Tier != TierNameDP {
				b.Fatalf("expected escalation, served %s (%s)", res.Tier, res.TierReason)
			}
		}
	})

	mix := tierMixedWorkload(b)
	b.Run("mixed/auto", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inst := mix[i%len(mix)]
			if _, err := Tiered(inst.cat, inst.q, Options{}, dm); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mixed/dp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inst := mix[i%len(mix)]
			if _, err := AlgorithmC(inst.cat, inst.q, Options{}, dm); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// medianLatency runs fn `runs` times after one warm-up call and returns the
// median wall-clock duration. Medians rather than means so a single
// scheduler hiccup cannot fail a latency budget.
func medianLatency(t testing.TB, runs int, fn func()) time.Duration {
	fn() // warm up: first call touches cold caches and allocator arenas
	ds := make([]time.Duration, runs)
	for i := range ds {
		start := time.Now()
		fn()
		ds[i] = time.Since(start)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// TestTierGreedyLatencyBudget enforces the fast path's reason to exist:
// greedy planning of chain and star joins at n∈{10,20} completes in under
// 100µs median, including optimizer construction and the gap probe.
func TestTierGreedyLatencyBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("latency budget not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("latency measurement skipped in -short mode")
	}
	const budget = 100 * time.Microsecond
	dm := tierBenchDist()
	for _, shape := range []workload.Topology{workload.Chain, workload.Star} {
		for _, n := range []int{10, 20} {
			cat, q := randInstance(t, 7, n, shape, false)
			med := medianLatency(t, 64, func() {
				res, err := Tiered(cat, q, Options{Tier: TierGreedy}, dm)
				if err != nil {
					t.Fatal(err)
				}
				if res.Tier != TierNameGreedy {
					t.Fatalf("pinned greedy served %s (%s)", res.Tier, res.TierReason)
				}
			})
			t.Logf("%v n=%d: median greedy latency %v", shape, n, med)
			if med > budget {
				t.Errorf("%v n=%d: median greedy latency %v exceeds %v budget", shape, n, med, budget)
			}
		}
	}
}

// TestTierMixedWorkloadSpeedup enforces the headline claim: over a mixed
// workload where most queries are low-risk, the tier-auto median planning
// latency is at least 10× lower than planning every query with the full DP.
func TestTierMixedWorkloadSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("latency comparison not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("latency measurement skipped in -short mode")
	}
	dm := tierBenchDist()
	mix := tierMixedWorkload(t)

	// Sanity-check the workload composition so a risk-threshold change
	// can't silently turn this into a trivial comparison.
	served := 0
	for _, inst := range mix {
		res, err := Tiered(inst.cat, inst.q, Options{}, dm)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tier == TierNameGreedy {
			served++
		}
	}
	if served < 6 || served == len(mix) {
		t.Fatalf("mixed workload serves %d/%d from greedy; want a majority but not all", served, len(mix))
	}

	perQuery := func(plan func(inst tierBenchInstance)) time.Duration {
		meds := make([]time.Duration, 0, len(mix))
		for _, inst := range mix {
			inst := inst
			meds = append(meds, medianLatency(t, 9, func() { plan(inst) }))
		}
		sort.Slice(meds, func(i, j int) bool { return meds[i] < meds[j] })
		return meds[len(meds)/2]
	}

	autoMed := perQuery(func(inst tierBenchInstance) {
		if _, err := Tiered(inst.cat, inst.q, Options{}, dm); err != nil {
			t.Fatal(err)
		}
	})
	dpMed := perQuery(func(inst tierBenchInstance) {
		if _, err := AlgorithmC(inst.cat, inst.q, Options{}, dm); err != nil {
			t.Fatal(err)
		}
	})

	t.Logf("mixed workload median: tier auto %v, always-DP %v (%.1f×)",
		autoMed, dpMed, float64(dpMed)/float64(autoMed))
	if autoMed*10 > dpMed {
		t.Errorf("tier auto median %v is not ≥10× below always-DP median %v", autoMed, dpMed)
	}
}
