package opt

import (
	"math"
	"sort"
	"testing"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestAlgorithmAExample11 shows Algorithm A already suffices for the
// paper's example: the 700-page bucket generates Plan 2 as a candidate,
// and the expected-cost comparison selects it.
func TestAlgorithmAExample11(t *testing.T) {
	cat, q, dm := workload.Example11()
	res, err := AlgorithmA(cat, q, Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	if j := rootJoin(t, res.Plan); j.Method != cost.GraceHash {
		t.Errorf("Algorithm A picked %v, want grace-hash", j.Method)
	}
	if want := 4_206_000.0; relDiff(res.Cost, want) > costTol {
		t.Errorf("E[cost] = %v, want %v", res.Cost, want)
	}
}

// TestHierarchyLSCgeAgeBgeC is the quality ordering the paper implies:
// E[LSC] ≥ E[A] ≥ E[B] ≥ E[C] — A's candidates include the LSC-at-mean
// plan, B's candidate pool contains A's, and C is exact.
func TestHierarchyLSCgeAgeBgeC(t *testing.T) {
	shapes := []workload.Topology{workload.Chain, workload.Star, workload.Clique}
	for seed := int64(0); seed < 15; seed++ {
		cat, q := randInstance(t, seed, 4, shapes[seed%3], seed%2 == 0)
		dm := randMemDist3(seed + 31)
		lsc, err := LSCPlan(cat, q, Options{}, dm, false)
		if err != nil {
			t.Fatal(err)
		}
		a, err := AlgorithmA(cat, q, Options{}, dm)
		if err != nil {
			t.Fatal(err)
		}
		b, err := AlgorithmB(cat, q, Options{TopC: 3}, dm)
		if err != nil {
			t.Fatal(err)
		}
		c, err := AlgorithmC(cat, q, Options{}, dm)
		if err != nil {
			t.Fatal(err)
		}
		tol := 1 + costTol
		// Note: LSC ≥ A requires the mean to be one of A's buckets, which
		// our Algorithm A does not add (it uses dm's support only), so we
		// assert the weaker and always-true A ≥ C chain plus LSC ≥ C.
		if a.Cost > lsc.Cost*tol && dmHasMean(dm) {
			t.Errorf("seed %d: E[A] %v > E[LSC] %v", seed, a.Cost, lsc.Cost)
		}
		if b.Cost > a.Cost*tol {
			t.Errorf("seed %d: E[B] %v > E[A] %v", seed, b.Cost, a.Cost)
		}
		if c.Cost > b.Cost*tol {
			t.Errorf("seed %d: E[C] %v > E[B] %v", seed, c.Cost, b.Cost)
		}
		if c.Cost > lsc.Cost*tol {
			t.Errorf("seed %d: E[C] %v > E[LSC] %v", seed, c.Cost, lsc.Cost)
		}
	}
}

func dmHasMean(dm *stats.Dist) bool {
	m := dm.Mean()
	for i := 0; i < dm.Len(); i++ {
		if dm.Value(i) == m {
			return true
		}
	}
	return false
}

// TestAlgorithmAIsNotExact hunts for an instance where Algorithm A misses
// the true LEC plan — the paper's §3.2 caveat: "It is conceivable that a
// plan not optimal for any m_i actually does better on average than any
// candidate considered."
func TestAlgorithmAIsNotExact(t *testing.T) {
	found := false
	for seed := int64(0); seed < 200 && !found; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Clique, seed%2 == 0)
		dm := randMemDist3(seed * 13)
		a, err := AlgorithmA(cat, q, Options{}, dm)
		if err != nil {
			t.Fatal(err)
		}
		c, err := AlgorithmC(cat, q, Options{}, dm)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cost > c.Cost*(1+1e-9) {
			found = true
			t.Logf("seed %d: E[A] = %v > E[C] = %v (gap %.2f%%)",
				seed, a.Cost, c.Cost, 100*(a.Cost/c.Cost-1))
		}
	}
	if !found {
		t.Error("Algorithm A matched Algorithm C on all 200 instances; expected at least one gap")
	}
}

// TestTopCPlansMatchExhaustive validates the top-c DP lists against a full
// enumeration sorted by cost.
func TestTopCPlansMatchExhaustive(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Chain, seed%2 == 0)
		mem := []float64{30, 400, 3000}[seed%3]
		for _, c := range []int{1, 2, 4, 8} {
			_, costs, _, err := TopCPlans(cat, q, Options{}, mem, c)
			if err != nil {
				t.Fatalf("seed %d c %d: %v", seed, c, err)
			}
			all, err := EnumeratePlans(cat, q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			allCosts := make([]float64, len(all))
			for i, p := range all {
				allCosts[i] = plan.Cost(p, mem)
			}
			sort.Float64s(allCosts)
			if len(costs) > len(allCosts) {
				t.Fatalf("top-c returned more plans than exist")
			}
			for i, got := range costs {
				if relDiff(got, allCosts[i]) > costTol {
					t.Errorf("seed %d c=%d mem=%v: rank %d cost %v, exhaustive %v",
						seed, c, mem, i, got, allCosts[i])
				}
			}
		}
	}
}

// TestProposition31Bound: no single top-c merge examines more than
// c + c·ln c combinations.
func TestProposition31Bound(t *testing.T) {
	cat, q := randInstance(t, 3, 5, workload.Clique, true)
	for _, c := range []int{1, 2, 3, 4, 8, 16, 32, 64} {
		_, _, counters, err := TopCPlans(cat, q, Options{}, 500, c)
		if err != nil {
			t.Fatal(err)
		}
		bound := MergeBound(c)
		if float64(counters.MaxMergeCombos) > math.Ceil(bound) {
			t.Errorf("c=%d: max merge combos %d exceeds bound %v",
				c, counters.MaxMergeCombos, bound)
		}
		if counters.MaxMergeCombos == 0 {
			t.Errorf("c=%d: merge counter never incremented", c)
		}
	}
}

// TestMergeBoundValues pins the analytic bound.
func TestMergeBoundValues(t *testing.T) {
	if MergeBound(1) != 1 {
		t.Errorf("MergeBound(1) = %v", MergeBound(1))
	}
	if got, want := MergeBound(4), 4+4*math.Log(4); math.Abs(got-want) > 1e-12 {
		t.Errorf("MergeBound(4) = %v, want %v", got, want)
	}
	if MergeBound(0) != 0 {
		t.Errorf("MergeBound(0) = %v", MergeBound(0))
	}
}

// TestAlgorithmBWithLargeCAchievesLEC: as c grows, B's candidate pool
// covers the whole plan space and the exact LEC plan must appear.
func TestAlgorithmBWithLargeCAchievesLEC(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Chain, true)
		dm := randMemDist3(seed + 77)
		c, err := AlgorithmC(cat, q, Options{}, dm)
		if err != nil {
			t.Fatal(err)
		}
		b, err := AlgorithmB(cat, q, Options{TopC: 512}, dm)
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(b.Cost, c.Cost) > costTol {
			t.Errorf("seed %d: B with huge c %v != C %v", seed, b.Cost, c.Cost)
		}
	}
}

// TestAlgorithmBCandidatesCoverA: at every bucket value m_i, Algorithm B's
// candidate pool contains a plan exactly as cheap as Algorithm A's winner
// for that bucket (the top-1 entry of the top-c DP is the System R
// optimum; plan identity can differ on cost ties).
func TestAlgorithmBCandidatesCoverA(t *testing.T) {
	cat, q := randInstance(t, 9, 4, workload.Star, false)
	dm := randMemDist3(17)
	bCands, _, err := AlgorithmBCandidates(cat, q, Options{TopC: 3}, dm)
	if err != nil {
		t.Fatal(err)
	}
	if len(bCands) == 0 {
		t.Fatal("no B candidates")
	}
	for i := 0; i < dm.Len(); i++ {
		mem := dm.Value(i)
		sr, err := SystemR(cat, q, Options{}, mem)
		if err != nil {
			t.Fatal(err)
		}
		bBest := math.Inf(1)
		for _, p := range bCands {
			if c := plan.Cost(p, mem); c < bBest {
				bBest = c
			}
		}
		if relDiff(bBest, sr.Cost) > costTol {
			t.Errorf("at m=%v: best B candidate costs %v, System R optimum %v", mem, bBest, sr.Cost)
		}
	}
}
