package opt

import (
	"sort"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/query"
	"repro/internal/stats"
)

// This file implements the level-set-aware bucketing strategy of paper
// §3.7: "if the cost of P has relatively few level sets, then it may be
// wise to bucket the parameter space with these level sets in mind." For
// the memory parameter, the level-set boundaries of every join the
// optimizer might consider are known in closed form (MemBreakpoints), so
// the query's entire parameter space can be partitioned into the minimal
// set of intervals within which every candidate plan's cost is constant.

// QueryMemBreakpoints returns the ascending set of memory values at which
// the cost of any join step or final sort the optimizer could construct for
// this query changes. Bucketing the memory distribution at these boundaries
// makes the bucketed expected cost of every left-deep plan *exact*.
func QueryMemBreakpoints(cat *catalog.Catalog, q *query.SPJ, opts Options) ([]float64, error) {
	ctx, err := NewContext(cat, q, opts)
	if err != nil {
		return nil, err
	}
	n := q.NumRels()
	set := map[float64]bool{}
	// Every join step the lattice can produce: subset S joined with
	// relation j ∉ S. The sweep follows the configured enumerator — under
	// EnumConnected the optimizer only ever prices extensions of connected
	// subsets by adjacent relations, so the breakpoint set matches the
	// steps that search can construct.
	connectedOnly := ctx.EffectiveEnumeration() == EnumConnected
	for d := 1; d < n; d++ {
		ctx.forEachLevel(d, func(s query.RelSet) {
			a := ctx.SubsetPages(s)
			for j := 0; j < n; j++ {
				if s.Has(j) {
					continue
				}
				if connectedOnly && ctx.conn[j]&s == 0 {
					continue
				}
				b := ctx.basePages[j]
				for _, m := range ctx.Opts.methods() {
					for _, bp := range cost.MemBreakpoints(m, a, b) {
						set[bp] = true
					}
				}
			}
		})
	}
	// The final sort, if the query orders its output.
	if q.OrderBy != nil {
		for _, bp := range cost.SortMemBreakpoints(ctx.SubsetPages(query.FullSet(n))) {
			set[bp] = true
		}
	}
	out := make([]float64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out, nil
}

// LevelSetMemDist rebuckets a fine-grained memory distribution at the
// query's level-set boundaries, optionally capping the bucket count (the
// coarse-to-fine refinement of §3.7). With maxBuckets ≤ 0 the full
// boundary set is used and the resulting distribution prices every plan
// exactly.
func LevelSetMemDist(fine *stats.Dist, breakpoints []float64, maxBuckets int) (*stats.Dist, error) {
	d, err := stats.BucketizeAt(fine, breakpoints)
	if err != nil {
		return nil, err
	}
	if maxBuckets > 0 {
		d = stats.Rebucket(d, maxBuckets)
	}
	return d, nil
}
