package opt

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// This file implements randomized left-deep plan search — iterative
// improvement with random restarts over (join order, method assignment)
// states. The paper points at this family twice: §1 ("randomized
// algorithms have also been proposed [Swa89, IK90]") and §2.3 ("[INSS92]
// suggest using randomized optimization to reduce the compile-time
// optimization effort" for parametric tables). It minimizes an arbitrary
// plan objective, so it works for specific cost, expected cost, or any of
// the utility objectives — including ones for which no exact DP exists.

// RandomizedOpts tunes the search.
type RandomizedOpts struct {
	// Restarts is the number of independent hill climbs (default 8).
	Restarts int
	// MaxMoves bounds the moves per climb (default 64·n²).
	MaxMoves int
	// Seed makes the search deterministic.
	Seed int64
}

func (r RandomizedOpts) withDefaults(n int) RandomizedOpts {
	if r.Restarts <= 0 {
		r.Restarts = 8
	}
	if r.MaxMoves <= 0 {
		r.MaxMoves = 64 * n * n
	}
	return r
}

// rstate is one point of the search space: a join order and a method per
// join step.
type rstate struct {
	perm    []int
	methods []cost.Method
}

func (s *rstate) clone() rstate {
	return rstate{
		perm:    append([]int(nil), s.perm...),
		methods: append([]cost.Method(nil), s.methods...),
	}
}

// buildPlan materializes the left-deep plan for a state.
func (ctx *Context) buildPlan(s rstate) plan.Node {
	cur := plan.Node(ctx.BestScan(s.perm[0]))
	set := query.NewRelSet(s.perm[0])
	for i := 1; i < len(s.perm); i++ {
		j := s.perm[i]
		set = set.Add(j)
		cur = ctx.NewJoin(cur, ctx.BestScan(j), s.methods[i-1], set, j)
	}
	finished, _ := ctx.FinishPlan(cur)
	return finished
}

// Randomized searches left-deep plans for the minimum of an arbitrary
// objective. Returns the best plan found; unlike the dynamic programs it
// carries no optimality guarantee, but it needs no decomposability from the
// objective and its cost is O(Restarts · MaxMoves) plan evaluations
// regardless of n.
func Randomized(cat *catalog.Catalog, q *query.SPJ, opts Options,
	objective func(plan.Node) float64, ropts RandomizedOpts) (*Result, error) {
	ctx, err := NewContext(cat, q, opts)
	if err != nil {
		return nil, err
	}
	n := q.NumRels()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty query")
	}
	if n == 1 {
		best := plan.Node(nil)
		bestVal := math.Inf(1)
		for _, s := range ctx.Scans(0) {
			finished, _ := ctx.FinishPlan(s)
			if v := objective(finished); v < bestVal {
				best, bestVal = finished, v
			}
		}
		return &Result{Plan: best, Cost: bestVal, Count: ctx.Count}, nil
	}
	ropts = ropts.withDefaults(n)
	rng := rand.New(rand.NewSource(ropts.Seed))
	methods := ctx.Opts.methods()

	randomState := func() rstate {
		s := rstate{perm: rng.Perm(n), methods: make([]cost.Method, n-1)}
		for i := range s.methods {
			s.methods[i] = methods[rng.Intn(len(methods))]
		}
		return s
	}
	// neighbor applies one random move in place and returns an undo func.
	neighbor := func(s *rstate) func() {
		if rng.Intn(2) == 0 && n >= 2 {
			i, j := rng.Intn(n), rng.Intn(n)
			for i == j {
				j = rng.Intn(n)
			}
			s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
			return func() { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] }
		}
		k := rng.Intn(n - 1)
		old := s.methods[k]
		s.methods[k] = methods[rng.Intn(len(methods))]
		return func() { s.methods[k] = old }
	}

	var best plan.Node
	bestVal := math.Inf(1)
	for r := 0; r < ropts.Restarts; r++ {
		cur := randomState()
		curVal := objective(ctx.buildPlan(cur))
		stale := 0
		for move := 0; move < ropts.MaxMoves && stale < 8*n; move++ {
			undo := neighbor(&cur)
			v := objective(ctx.buildPlan(cur))
			if v < curVal {
				curVal = v
				stale = 0
			} else {
				undo()
				stale++
			}
		}
		if curVal < bestVal {
			bestVal = curVal
			best = ctx.buildPlan(cur)
		}
	}
	if best == nil {
		return nil, fmt.Errorf("opt: randomized search found no plan")
	}
	return &Result{Plan: best, Cost: bestVal, Count: ctx.Count}, nil
}

// RandomizedLEC minimizes expected cost under a static memory distribution
// by randomized search.
func RandomizedLEC(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist, ropts RandomizedOpts) (*Result, error) {
	return Randomized(cat, q, opts, func(p plan.Node) float64 {
		return plan.ExpCost(p, dm)
	}, ropts)
}
