package opt

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestPipelinedObjectiveConsistency: with a single shared distribution the
// pipeline-aware and per-join objectives coincide, so the exhaustive optima
// match Algorithm C.
func TestPipelinedObjectiveConsistency(t *testing.T) {
	cat, q := randInstance(t, 4, 4, workload.Chain, true)
	dm := randMemDist3(19)
	static := []*stats.Dist{dm}
	exPipe, err := ExhaustivePipelined(cat, q, Options{}, static)
	if err != nil {
		t.Fatal(err)
	}
	c, err := AlgorithmC(cat, q, Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(exPipe.Cost, c.Cost) > costTol {
		t.Errorf("static pipeline optimum %v != Algorithm C %v", exPipe.Cost, c.Cost)
	}
}

// TestDPPlanNearOptimalUnderPipelineModel: the per-join-phase DP's plan,
// re-scored under the pipeline-aware model, is close to (and never better
// than) the true pipeline-aware optimum.
func TestDPPlanNearOptimalUnderPipelineModel(t *testing.T) {
	worst := 1.0
	for seed := int64(0); seed < 10; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Chain, seed%2 == 0)
		chain, err := stats.RandomWalkChain([]float64{20, 200, 2000, 6000}, 0.5, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		initial := stats.Point(6000)
		dyn, err := AlgorithmCDynamic(cat, q, Options{}, chain, initial)
		if err != nil {
			t.Fatal(err)
		}
		phases := PhaseDistsFor(q, chain, initial)
		exPipe, err := ExhaustivePipelined(cat, q, Options{}, phases)
		if err != nil {
			t.Fatal(err)
		}
		dpUnderPipe := plan.ExpCostPipelined(dyn.Plan, phases)
		if dpUnderPipe < exPipe.Cost*(1-1e-9) {
			t.Errorf("seed %d: DP plan %v beats exhaustive pipeline optimum %v", seed, dpUnderPipe, exPipe.Cost)
		}
		if ratio := dpUnderPipe / exPipe.Cost; ratio > worst {
			worst = ratio
		}
	}
	if worst > 1.5 {
		t.Errorf("per-join DP plan up to %.2fx worse than the pipeline-aware optimum — approximation too loose", worst)
	}
	t.Logf("worst DP-plan/pipeline-optimum ratio: %.4f", worst)
}

// TestPipelineModelCanChangeThePlan hunts for an instance where the
// pipeline-aware optimum differs from the per-join-phase optimum — the
// reason the paper flags the phase simplification.
func TestPipelineModelCanChangeThePlan(t *testing.T) {
	found := false
	for seed := int64(0); seed < 60 && !found; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Chain, false)
		chain, err := stats.RandomWalkChain([]float64{20, 200, 2000, 6000}, 0.6, 0.0)
		if err != nil {
			t.Fatal(err)
		}
		initial := stats.Point(6000)
		phases := PhaseDistsFor(q, chain, initial)
		dyn, err := AlgorithmCDynamic(cat, q, Options{}, chain, initial)
		if err != nil {
			t.Fatal(err)
		}
		exPipe, err := ExhaustivePipelined(cat, q, Options{}, phases)
		if err != nil {
			t.Fatal(err)
		}
		if plan.ExpCostPipelined(dyn.Plan, phases) > exPipe.Cost*(1+1e-9) {
			found = true
			t.Logf("seed %d: pipeline model picks a different plan (gap %.3f%%)",
				seed, 100*(plan.ExpCostPipelined(dyn.Plan, phases)/exPipe.Cost-1))
		}
	}
	if !found {
		t.Error("pipeline-aware and per-join optima coincided on all instances; expected at least one difference")
	}
}
