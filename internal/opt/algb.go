package opt

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// topEntry is one of the c best plans for a lattice node.
type topEntry struct {
	node plan.Node
	cost float64
}

// mergeTopC combines the top plans for the left input (sorted ascending by
// cost) with the access paths for the right input (also sorted), keeping
// only pairs (i, k) with i·k ≤ c (1-indexed). Proposition 3.1: the pair
// (s_i, a_k) is dominated by at least i·k − 1 cheaper combinations, so pairs
// with i·k > c can never be in the top c; at most c + c·ln c pairs survive
// the cut. stepCost is the join-method cost, identical for every pair.
func mergeTopC(ctx *Context, left []topEntry, scans []topEntry, stepCost float64, c int,
	build func(l, r topEntry) plan.Node) []topEntry {
	var out []topEntry
	combos := 0
	for i := 1; i <= len(left) && i <= c; i++ {
		maxK := c / i
		for k := 1; k <= len(scans) && k <= maxK; k++ {
			combos++
			l, r := left[i-1], scans[k-1]
			out = append(out, topEntry{
				node: build(l, r),
				cost: l.cost + r.cost + stepCost,
			})
		}
	}
	ctx.Count.MergeCombos += combos
	if combos > ctx.Count.MaxMergeCombos {
		ctx.Count.MaxMergeCombos = combos
	}
	return out
}

// sortTruncate orders entries by cost (ties broken on the structural key
// for determinism) and keeps the best c; the rest count as prunes.
func sortTruncate(ctx *Context, entries []topEntry, c int) []topEntry {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].cost != entries[j].cost {
			return entries[i].cost < entries[j].cost
		}
		return entries[i].node.Key() < entries[j].node.Key()
	})
	if len(entries) > c {
		ctx.Count.Prunes += len(entries) - c
		entries = entries[:c]
	}
	return entries
}

// runTopC runs the top-c variant of the System R dynamic program
// (paper §3.3) and returns the best c finished root plans, ascending by
// cost under the engine's pricer. The per-relation scan lists and the
// per-subset list table are engine scratch, reused across Algorithm B's
// bucket invocations.
func (o *Optimizer) runTopC(c int) ([]topEntry, error) {
	ctx, pr := o.ctx, o.pricer
	n := ctx.Q.NumRels()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty query")
	}
	scanLists := o.scanLists(c)
	if n == 1 {
		var roots []topEntry
		for _, e := range scanLists[0] {
			roots = append(roots, finishEntry(ctx, pr, e, 0))
		}
		return sortTruncate(ctx, roots, c), nil
	}

	lists := o.topTable(n)
	for i := 0; i < n; i++ {
		lists.put(query.NewRelSet(i), scanLists[i])
	}
	full := query.FullSet(n)
	var roots []topEntry
	methods := ctx.Opts.Methods

	for d := 2; d <= n && !ctx.stopped(); d++ {
		ctx.forEachLevel(d, func(s query.RelSet) {
			if !ctx.visitSubset() {
				return
			}
			var merged []topEntry
			s.ForEach(func(j int) {
				if ctx.stopped() {
					return
				}
				sj := s.Without(j)
				// Empty under the connected enumerator when S\{j} is
				// disconnected — the same csg restriction as the single-best DP.
				left := lists.get(sj)
				if len(left) == 0 || !ctx.extensionAllowed(sj, j) {
					return
				}
				for _, m := range methods {
					ctx.Count.JoinSteps++
					stepCost := ctx.priceJoin(pr, m, left[0].node, scanLists[j][0].node, s, d-2)
					merged = append(merged, mergeTopC(ctx, left, scanLists[j], stepCost, c,
						func(l, r topEntry) plan.Node {
							return ctx.NewJoin(l.node, r.node.(*plan.Scan), m, s, j)
						})...)
				}
			})
			if s == full {
				for _, e := range merged {
					roots = append(roots, finishEntry(ctx, pr, e, d-2))
				}
			}
			lists.put(s, sortTruncate(ctx, merged, c))
		})
	}
	if ctx.stopped() && len(roots) == 0 {
		// Anytime: an interrupted top-c search with no finished roots has
		// nothing to hand back; the caller's ladder takes over.
		return nil, ctx.stopCause
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("opt: no plan found")
	}
	return sortTruncate(ctx, roots, c), nil
}

// finishEntry applies the ORDER BY sort to a root candidate, charging the
// sort cost when the plan's order does not already satisfy it.
func finishEntry(ctx *Context, pr stepPricer, e topEntry, phase int) topEntry {
	finished, added := ctx.FinishPlan(e.node)
	total := e.cost
	if added {
		total += ctx.priceSort(pr, e.node, phase)
	}
	return topEntry{node: finished, cost: total}
}

// AlgorithmB implements paper §3.3: generate the top c plans for each of
// the b bucket representatives of the memory distribution, then pick the
// candidate with the least expected cost under the full distribution. It
// dominates Algorithm A (its candidate pool is a superset) but still does
// not always find the exact LEC plan.
func AlgorithmB(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	return AlgorithmBCtx(context.Background(), cat, q, opts, dm)
}

// AlgorithmBCandidates returns the deduplicated union of the top-c plans
// across all b bucket representatives (up to c·b plans). All b searches
// run on one engine session, so the memo tables, plan arena, and top-c
// scratch are shared instead of rebuilt per bucket.
func AlgorithmBCandidates(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) ([]plan.Node, Counters, error) {
	cands, counters, _, _, err := algorithmBCandidatesCtx(context.Background(), cat, q, opts, dm)
	return cands, counters, err
}

// TopCPlans exposes the top-c plans at a single fixed memory value,
// ascending by cost — used by tests to check Proposition 3.1 and the
// correctness of the top-c lists against exhaustive enumeration.
func TopCPlans(cat *catalog.Catalog, q *query.SPJ, opts Options, mem float64, c int) ([]plan.Node, []float64, Counters, error) {
	eng, err := NewOptimizer(cat, q, opts, Config{Coster: FixedParams{Mem: mem}})
	if err != nil {
		return nil, nil, Counters{}, err
	}
	plans, costs, err := eng.OptimizeTop(c)
	return plans, costs, eng.Stats(), nil
}

// MergeBound returns the Proposition 3.1 upper bound c + c·ln c on the
// number of combinations examined per (input, join-method) merge.
func MergeBound(c int) float64 {
	if c <= 1 {
		return float64(c)
	}
	return float64(c) + float64(c)*math.Log(float64(c))
}
