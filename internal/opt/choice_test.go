package opt

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/workload"
)

func TestChoicePlanExample11(t *testing.T) {
	cat, q, dm := workload.Example11()
	cp, err := BuildChoicePlan(cat, q, Options{Methods: []cost.Method{cost.SortMerge, cost.GraceHash, cost.NestedLoop}})
	if err != nil {
		t.Fatal(err)
	}
	if cp.NumAlternatives() < 2 {
		t.Fatalf("only %d alternatives", cp.NumAlternatives())
	}
	// Resolution follows the regimes.
	p700, err := cp.Resolve(700)
	if err != nil {
		t.Fatal(err)
	}
	if j := rootJoin(t, p700); j.Method != cost.GraceHash {
		t.Errorf("at 700: %v", j.Method)
	}
	p2000, err := cp.Resolve(2000)
	if err != nil {
		t.Fatal(err)
	}
	if j := rootJoin(t, p2000); j.Method != cost.SortMerge {
		t.Errorf("at 2000: %v", j.Method)
	}
	// Strategy cost matches the parametric bound and beats LEC.
	ec, err := cp.ExpCost(dm)
	if err != nil {
		t.Fatal(err)
	}
	lec, err := AlgorithmC(cat, q, Options{Methods: []cost.Method{cost.SortMerge, cost.GraceHash, cost.NestedLoop}}, dm)
	if err != nil {
		t.Fatal(err)
	}
	if ec > lec.Cost*(1+costTol) {
		t.Errorf("choice plan %v worse than LEC %v", ec, lec.Cost)
	}
	// Explain mentions the choice node and both alternatives.
	out := cp.Explain()
	for _, want := range []string{"choose on startup memory", "grace-hash", "sort-merge"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestChoicePlanResolveConsistentWithSystemR(t *testing.T) {
	opts := Options{Methods: []cost.Method{cost.SortMerge, cost.GraceHash, cost.NestedLoop}}
	cat, q := randInstance(t, 5, 4, workload.Chain, true)
	cp, err := BuildChoicePlan(cat, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, mem := range []float64{5, 60, 450, 2200, 9000} {
		p, err := cp.Resolve(mem)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := SystemR(cat, q, opts, mem)
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(plan.Cost(p, mem), fresh.Cost) > costTol {
			t.Errorf("mem %v: choice %v, fresh %v", mem, plan.Cost(p, mem), fresh.Cost)
		}
	}
}
