package opt

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// ChoicePlan implements the [GC94] strategy of paper §2.3: "a hybrid
// strategy that performs some of the search activity at compile-time. Any
// decisions that are affected by the value of the parameter are deferred to
// start-up time through the use of 'choice nodes' in the query evaluation
// plan." Here the whole memory axis is compiled into one artifact whose
// single top-level choice node selects among the level-set-optimal
// alternatives when the actual memory is observed at start-up.
type ChoicePlan struct {
	intervals []ParamInterval
}

// BuildChoicePlan compiles the query into a choice plan. The alternatives
// are exactly the parametric table's distinct plans.
func BuildChoicePlan(cat *catalog.Catalog, q *query.SPJ, opts Options) (*ChoicePlan, error) {
	table, err := ParametricPlans(cat, q, opts)
	if err != nil {
		return nil, err
	}
	return &ChoicePlan{intervals: table}, nil
}

// NumAlternatives returns the number of distinct plans behind the choice
// node — the compile-time artifact's size, which the paper notes stays
// small ("the size of the query plan created does not increase" is LEC's
// advantage; a choice plan grows with the number of level sets).
func (c *ChoicePlan) NumAlternatives() int { return len(c.intervals) }

// Resolve returns the alternative for the observed start-up memory.
func (c *ChoicePlan) Resolve(mem float64) (plan.Node, error) {
	return LookupParam(c.intervals, mem)
}

// ExpCost returns the strategy's expected execution cost under a start-up
// memory distribution (resolution is free; each alternative runs at the
// memory that selected it).
func (c *ChoicePlan) ExpCost(dm *stats.Dist) (float64, error) {
	return ExpCostParametric(c.intervals, dm)
}

// Explain renders the choice node and its alternatives.
func (c *ChoicePlan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "choose on startup memory (%d alternatives)\n", len(c.intervals))
	for _, iv := range c.intervals {
		fmt.Fprintf(&b, "— [%g, %g) pages:\n", iv.Lo, iv.Hi)
		for _, line := range strings.Split(strings.TrimRight(plan.Explain(iv.Plan), "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}
