package opt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// This file implements the start-up-time strategy the paper contrasts
// itself with (§2.3, second bullet; [INSS92]): "find the best execution
// plan for every possible run-time value of the parameter. This requires
// much additional work at compile-time, but very little work at query
// execution time (a simple table lookup)."
//
// Because every candidate plan's cost is piecewise constant in memory with
// breakpoints known in closed form (QueryMemBreakpoints), the full
// parametric plan table is finite: one System R run per level-set interval
// covers the entire memory axis exactly.

// ParamInterval is one row of a parametric plan table: Plan is optimal for
// every memory value in [Lo, Hi).
type ParamInterval struct {
	Lo, Hi float64
	Plan   plan.Node
	// Cost is Φ(Plan, m) for m in the interval (constant when the plan
	// space is piecewise constant; evaluated at the representative).
	Cost float64
}

// ParametricPlans computes the optimal plan for every memory level set.
// The table covers (0, ∞): the last interval's Hi is +Inf. Adjacent
// intervals with identical plans are merged.
func ParametricPlans(cat *catalog.Catalog, q *query.SPJ, opts Options) ([]ParamInterval, error) {
	bps, err := QueryMemBreakpoints(cat, q, opts)
	if err != nil {
		return nil, err
	}
	edges := append([]float64{1}, bps...)
	sort.Float64s(edges)
	var out []ParamInterval
	for i := 0; i < len(edges); i++ {
		lo := edges[i]
		hi := math.Inf(1)
		if i+1 < len(edges) {
			hi = edges[i+1]
		}
		if hi <= lo {
			continue
		}
		// Representative strictly inside the interval. Cost formulas use
		// strict thresholds (cost changes just above each breakpoint), so
		// the midpoint — or lo+1 for the unbounded tail — is safe.
		rep := lo + 1
		if !math.IsInf(hi, 1) {
			rep = (lo + hi) / 2
		}
		res, err := SystemR(cat, q, opts, rep)
		if err != nil {
			return nil, err
		}
		if n := len(out); n > 0 && out[n-1].Plan.Key() == res.Plan.Key() {
			out[n-1].Hi = hi
			continue
		}
		out = append(out, ParamInterval{Lo: lo, Hi: hi, Plan: res.Plan, Cost: res.Cost})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("opt: empty parametric table")
	}
	// Extend the first interval down to 0: below one page the cost model
	// clamps to one page anyway.
	out[0].Lo = 0
	return out, nil
}

// LookupParam returns the plan for a given start-up-time memory value —
// the paper's "simple table lookup".
func LookupParam(table []ParamInterval, mem float64) (plan.Node, error) {
	i := sort.Search(len(table), func(i int) bool { return table[i].Hi > mem })
	if i >= len(table) {
		return nil, fmt.Errorf("opt: memory %v beyond parametric table", mem)
	}
	return table[i].Plan, nil
}

// ExpCostParametric returns the expected execution cost of the [INSS92]
// strategy under a memory distribution: at start-up the true memory value
// is observed and the table's plan for it is run. This is the oracle-ish
// lower bound among static-plan strategies — LEC can only match it when a
// single plan is optimal everywhere, but LEC does not need to know the
// value at start-up.
func ExpCostParametric(table []ParamInterval, dm *stats.Dist) (float64, error) {
	total := 0.0
	for i := 0; i < dm.Len(); i++ {
		p, err := LookupParam(table, dm.Value(i))
		if err != nil {
			return 0, err
		}
		total += dm.Prob(i) * plan.Cost(p, dm.Value(i))
	}
	return total, nil
}
