package opt

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// selfJoinInstance builds "employees e, employees m" joined on e.mgr = m.id
// — the canonical self join.
func selfJoinInstance() (*catalog.Catalog, *query.SPJ) {
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{
		Name: "employees", Rows: 100_000, Pages: 10_000,
		Columns: []*catalog.Column{
			{Name: "id", Distinct: 100_000, Min: 1, Max: 100_000},
			{Name: "mgr", Distinct: 5_000, Min: 1, Max: 5_000},
		},
	})
	q := &query.SPJ{
		Tables:  []string{"e", "m"},
		Aliases: map[string]string{"e": "employees", "m": "employees"},
		Joins: []query.JoinPred{{
			Left:        query.ColumnRef{Table: "e", Column: "mgr"},
			Right:       query.ColumnRef{Table: "m", Column: "id"},
			Selectivity: 1.0 / 100_000,
		}},
	}
	return cat, q
}

func TestSelfJoinOptimizes(t *testing.T) {
	cat, q := selfJoinInstance()
	dm := stats.MustNew([]float64{50, 5000}, []float64{0.5, 0.5})
	lec, err := AlgorithmC(cat, q, Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := ExhaustiveLEC(cat, q, Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(lec.Cost, ex.Cost) > costTol {
		t.Errorf("self-join LEC %v != exhaustive %v", lec.Cost, ex.Cost)
	}
	// Both scans read the same base table under different range names.
	var bases, names []string
	plan.Walk(lec.Plan, func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok {
			bases = append(bases, s.BaseTable())
			names = append(names, s.Table)
		}
	})
	if len(bases) != 2 || bases[0] != "employees" || bases[1] != "employees" {
		t.Errorf("scan bases = %v", bases)
	}
	if names[0] == names[1] {
		t.Errorf("range names collide: %v", names)
	}
}

func TestSelfJoinAliasValidation(t *testing.T) {
	cat, q := selfJoinInstance()
	if err := q.Validate(cat); err != nil {
		t.Fatalf("valid self join rejected: %v", err)
	}
	bad := *q
	bad.Aliases = map[string]string{"e": "employees", "m": "employees", "zz": "employees"}
	if err := bad.Validate(cat); err == nil {
		t.Error("alias not in FROM accepted")
	}
	bad2 := *q
	bad2.Aliases = map[string]string{"e": "ghost", "m": "employees"}
	if err := bad2.Validate(cat); err == nil {
		t.Error("alias over unknown base accepted")
	}
}
