package opt

// Property tests for the pluggable enumeration seam (graph-aware csg
// enumeration vs the exhaustive lattice). The load-bearing claims:
//
//   - a plan whose joins all carry predicates has only connected
//     intermediate subsets, so whenever the exhaustive winner is
//     cross-join-free the connected enumerator finds the *same* winner at
//     the same cost;
//   - the connected enumerator is itself deterministic across parallelism,
//     byte-identical between Parallelism 1 and N;
//   - the skipped/enumerated counters partition the lattice exactly;
//   - memo sizing follows the enumerator's prediction, and table backings
//     stay unallocated until first use.

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/workload"
)

// crossJoinFree reports whether every join in the plan applies at least one
// predicate — i.e. the plan contains no cross join.
func crossJoinFree(n plan.Node) bool {
	free := true
	plan.Walk(n, func(nd plan.Node) {
		if j, ok := nd.(*plan.Join); ok && len(j.Preds) == 0 {
			free = false
		}
	})
	return free
}

// enumShapes is the mixed-topology rotation the random-graph properties
// cycle through.
var enumShapes = []workload.Topology{
	workload.Chain, workload.Star, workload.Clique, workload.RandomTree, workload.Cycle,
}

// TestConnectedMatchesExhaustiveRandomGraphs drives 160 random join graphs
// (n ≤ 9, mixed shapes, both plan spaces, fixed and distribution costers)
// through both enumerators and checks:
//
//  1. when the exhaustive winner is cross-join-free, the connected run
//     returns the identical plan at the bit-identical cost;
//  2. the connected run never visits more subsets than the exhaustive one;
//  3. enumerated + skipped partition the binomial lattice exactly.
func TestConnectedMatchesExhaustiveRandomGraphs(t *testing.T) {
	dm := stats.MustNew([]float64{200, 900, 4000}, []float64{0.3, 0.4, 0.3})
	cases, crossJoinWinners := 0, 0
	for i := 0; i < 160; i++ {
		seed := int64(9000 + i)
		n := 2 + i%8 // 2..9
		shape := enumShapes[i%len(enumShapes)]
		space := SpaceLeftDeep
		if i%2 == 1 {
			space = SpaceBushy
		}
		var coster Coster = FixedParams{Mem: dm.Mean()}
		if i%3 == 0 {
			coster = StaticParams{Mem: dm}
		}
		cfg := Config{Space: space, Coster: coster}
		cat, q := randInstance(t, seed, n, shape, i%4 == 0)

		optimize := func(e Enumeration) (*Result, Stats) {
			eng, err := NewOptimizer(cat, q, Options{Enumeration: e}, cfg)
			if err != nil {
				t.Fatalf("case %d: NewOptimizer: %v", i, err)
			}
			res, err := eng.Optimize()
			if err != nil {
				t.Fatalf("case %d (%v n=%d %v): Optimize(%v): %v", i, shape, n, space, e, err)
			}
			return res, eng.Stats()
		}
		ex, exStats := optimize(EnumExhaustive)
		cn, cnStats := optimize(EnumConnected)
		cases++

		if cn.Enumeration != EnumConnected {
			t.Errorf("case %d: effective enumeration %v, want connected (graph is shape-connected)", i, cn.Enumeration)
		}
		if crossJoinFree(ex.Plan) {
			if cn.Plan.Key() != ex.Plan.Key() {
				t.Errorf("case %d (%v n=%d %v): connected plan %s != exhaustive %s",
					i, shape, n, space, cn.Plan.Key(), ex.Plan.Key())
			}
			if math.Float64bits(cn.Cost) != math.Float64bits(ex.Cost) {
				t.Errorf("case %d (%v n=%d %v): connected cost %v != exhaustive %v",
					i, shape, n, space, cn.Cost, ex.Cost)
			}
		} else {
			crossJoinWinners++
			// The exhaustive winner needs a cross join; the connected plan
			// must still be valid and can only cost more.
			if cn.Cost < ex.Cost {
				t.Errorf("case %d: connected cost %v beats exhaustive %v despite smaller space",
					i, cn.Cost, ex.Cost)
			}
		}
		checkValidPlan(t, cn, q, "connected")

		if cnStats.Subsets > exStats.Subsets {
			t.Errorf("case %d: connected visited %d subsets > exhaustive %d",
				i, cnStats.Subsets, exStats.Subsets)
		}
		if exStats.SubsetsSkipped != 0 {
			t.Errorf("case %d: exhaustive SubsetsSkipped = %d, want 0", i, exStats.SubsetsSkipped)
		}
		var lattice int64
		for d := 2; d <= n; d++ {
			lattice += query.Binomial(n, d)
		}
		if got := int64(cnStats.SubsetsEnumerated + cnStats.SubsetsSkipped); got != lattice {
			t.Errorf("case %d (%v n=%d): enumerated %d + skipped %d = %d does not partition lattice %d",
				i, shape, n, cnStats.SubsetsEnumerated, cnStats.SubsetsSkipped, got, lattice)
		}
		if shape == workload.Clique && cnStats.SubsetsSkipped != 0 {
			t.Errorf("case %d: clique skipped %d subsets, want 0 (all subsets connected)",
				i, cnStats.SubsetsSkipped)
		}
		if (shape == workload.Chain || shape == workload.Cycle) && n >= 5 && cnStats.SubsetsSkipped == 0 {
			t.Errorf("case %d (%v n=%d): connected enumerator skipped nothing", i, shape, n)
		}
	}
	t.Logf("%d random graphs; %d exhaustive winners contained a cross join", cases, crossJoinWinners)
}

// TestDisconnectedGraphFallsBackToExhaustive: a query with join predicates
// on only part of the relations has a disconnected join graph; EnumConnected
// must degrade to the exhaustive lattice and still plan (with the mandatory
// cross join).
func TestDisconnectedGraphFallsBackToExhaustive(t *testing.T) {
	cat, q := randInstance(t, 9601, 5, workload.Chain, false)
	// Sever the chain: drop every predicate touching the last relation.
	last := q.Tables[len(q.Tables)-1]
	var joins []query.JoinPred
	for _, p := range q.Joins {
		if p.Left.Table != last && p.Right.Table != last {
			joins = append(joins, p)
		}
	}
	q.Joins = joins
	eng, err := NewOptimizer(cat, q, Options{Enumeration: EnumConnected}, Config{Coster: FixedParams{Mem: 900}})
	if err != nil {
		t.Fatalf("NewOptimizer: %v", err)
	}
	res, err := eng.Optimize()
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if res.Enumeration != EnumExhaustive {
		t.Errorf("effective enumeration %v, want exhaustive fallback", res.Enumeration)
	}
	if crossJoinFree(res.Plan) {
		t.Errorf("disconnected graph planned without a cross join: %s", res.Plan.Key())
	}
	checkValidPlan(t, res, q, "disconnected-fallback")
	if st := eng.Stats(); st.SubsetsSkipped != 0 {
		t.Errorf("fallback run skipped %d subsets, want 0", st.SubsetsSkipped)
	}
}

// TestConnectedParallelDeterminism: under the connected enumerator a
// Parallelism-4 run must stay byte-identical to the sequential run — plan
// key, cost bits, Stats and trace — exactly as the exhaustive grid test
// guarantees for the default enumerator.
func TestConnectedParallelDeterminism(t *testing.T) {
	dm := stats.MustNew([]float64{200, 900, 4000}, []float64{0.3, 0.4, 0.3})
	for _, space := range []Space{SpaceLeftDeep, SpaceBushy} {
		for ci, coster := range []Coster{FixedParams{Mem: dm.Mean()}, StaticParams{Mem: dm}} {
			cfg := Config{Space: space, Coster: coster}
			for i, shape := range enumShapes {
				seed := int64(9300 + 10*ci + i)
				n := 6 + i%3
				cat, q := randInstance(t, seed, n, shape, true)
				run := func(par int) (*Result, Stats) {
					eng, err := NewOptimizer(cat, q,
						Options{Enumeration: EnumConnected, Trace: true, Parallelism: par}, cfg)
					if err != nil {
						t.Fatalf("NewOptimizer: %v", err)
					}
					res, err := eng.Optimize()
					if err != nil {
						t.Fatalf("%v/%v P=%d: %v", space, shape, par, err)
					}
					return res, eng.Stats()
				}
				seq, seqStats := run(1)
				par, parStats := run(4)
				label := space.String() + "/" + shape.String()
				if par.Plan.Key() != seq.Plan.Key() {
					t.Errorf("%s: P=4 plan %s != sequential %s", label, par.Plan.Key(), seq.Plan.Key())
				}
				if math.Float64bits(par.Cost) != math.Float64bits(seq.Cost) {
					t.Errorf("%s: P=4 cost %v != sequential %v", label, par.Cost, seq.Cost)
				}
				if parStats != seqStats {
					t.Errorf("%s: P=4 stats %+v != sequential %+v", label, parStats, seqStats)
				}
				if !reflect.DeepEqual(par.Trace, seq.Trace) {
					t.Errorf("%s: P=4 trace diverged from sequential", label)
				}
			}
		}
	}
}

// TestParallelFaultMatrixConnected repeats the parallel fault matrix
// (poisoned costs, panics, cancellation) with the connected enumerator at
// Parallelism 4: every injected fault must still land on the anytime ladder
// — a valid covering plan or a typed error — and never hang.
func TestParallelFaultMatrixConnected(t *testing.T) {
	dm := stats.MustNew([]float64{200, 900, 4000}, []float64{0.3, 0.4, 0.3})
	faults := map[string]faultinject.Rule{
		"nan":    {Site: faultinject.JoinCost, Kind: faultinject.KindNaN, After: 3, Every: 5},
		"inf":    {Site: faultinject.JoinCost, Kind: faultinject.KindInf, After: 3, Every: 5},
		"panic":  {Site: faultinject.JoinCost, Kind: faultinject.KindPanic, After: 10},
		"cancel": {Site: faultinject.JoinCost, Kind: faultinject.KindCancel, After: 15},
	}
	for fname, rule := range faults {
		for _, space := range []Space{SpaceLeftDeep, SpaceBushy} {
			t.Run(fname+"/"+space.String(), func(t *testing.T) {
				cat, q := randInstance(t, 9401, 7, workload.Cycle, true)
				eng, err := NewOptimizer(cat, q,
					Options{Enumeration: EnumConnected, Parallelism: 4, Trace: true},
					Config{Space: space, Coster: StaticParams{Mem: dm}})
				if err != nil {
					t.Fatalf("NewOptimizer: %v", err)
				}
				rc, cancel := context.WithCancel(context.Background())
				defer cancel()
				in := faultinject.New(1, rule)
				in.OnCancel(cancel)
				faultinject.Enable(in)
				defer faultinject.Disable()

				done := make(chan struct{})
				var res *Result
				var oerr error
				go func() {
					res, oerr = eng.OptimizeCtx(rc)
					close(done)
				}()
				select {
				case <-done:
				case <-time.After(30 * time.Second):
					t.Fatal("connected parallel run hung under fault injection")
				}
				if oerr != nil {
					return // typed failure is acceptable for total poisoning
				}
				checkValidPlan(t, res, q, fname)
			})
		}
	}
}

// TestMemoSizingPolicy checks the enumerator-driven dense/sparse split:
// small n stays dense for both enumerators, a large sparse graph under the
// connected enumerator gets a sparse table sized by the csg count, and the
// exhaustive enumerator keeps its dense representation up to the ceiling.
func TestMemoSizingPolicy(t *testing.T) {
	sizing := func(t *testing.T, n int, shape workload.Topology, e Enumeration) memoSizing {
		t.Helper()
		cat, q := randInstance(t, 9500+int64(n), n, shape, false)
		ctx, err := NewContext(cat, q, Options{Enumeration: e})
		if err != nil {
			t.Fatalf("NewContext: %v", err)
		}
		return ctx.sizing
	}

	if sz := sizing(t, 8, workload.Chain, EnumExhaustive); !sz.dense || sz.predict != 1<<8 {
		t.Errorf("exhaustive n=8: sizing %+v, want dense with predict 256", sz)
	}
	if sz := sizing(t, 8, workload.Chain, EnumConnected); !sz.dense {
		t.Errorf("connected n=8 (small): sizing %+v, want dense", sz)
	}
	if sz := sizing(t, 20, workload.Chain, EnumExhaustive); !sz.dense {
		t.Errorf("exhaustive n=20: sizing %+v, want dense (at the ceiling)", sz)
	}
	// A 24-relation chain has 300 connected subsets in a 16M lattice: the
	// connected enumerator must size a sparse table from the csg count.
	if sz := sizing(t, 24, workload.Chain, EnumConnected); sz.dense || sz.predict != 24*25/2 {
		t.Errorf("connected n=24 chain: sizing %+v, want sparse with predict 300", sz)
	}
	// The same 24 relations exhaustively: past the dense ceiling.
	if sz := sizing(t, 24, workload.Chain, EnumExhaustive); sz.dense {
		t.Errorf("exhaustive n=24: sizing %+v, want sparse", sz)
	}
	// A clique's connected family IS the full lattice — dense up to the
	// ceiling even under the connected enumerator.
	if sz := sizing(t, 14, workload.Clique, EnumConnected); !sz.dense {
		t.Errorf("connected n=14 clique: sizing %+v, want dense (lattice is fully connected)", sz)
	}
}

// TestMemoLazyAllocation: table backings must not be allocated before first
// use — the satellite fix for the old always-2^n allocation in NewContext.
func TestMemoLazyAllocation(t *testing.T) {
	dense := newFloatMemo(memoSizing{n: 10, dense: true, predict: 1 << 10})
	if dense.dense != nil {
		t.Fatal("dense floatMemo allocated its backing before first put")
	}
	if _, ok := dense.get(query.NewRelSet(3)); ok {
		t.Fatal("empty memo reported a hit")
	}
	dense.put(query.NewRelSet(3), 42)
	if v, ok := dense.get(query.NewRelSet(3)); !ok || v != 42 {
		t.Fatalf("dense memo get = %v,%v after put", v, ok)
	}

	sparse := newFloatMemo(memoSizing{n: 25, dense: false, predict: 325})
	if sparse.sparse != nil {
		t.Fatal("sparse floatMemo allocated its backing before first put")
	}
	big := query.FullSet(25).Without(3)
	sparse.put(big, 7)
	if v, ok := sparse.get(big); !ok || v != 7 {
		t.Fatalf("sparse memo get = %v,%v after put", v, ok)
	}
	if _, ok := sparse.get(query.FullSet(25)); ok {
		t.Fatal("sparse memo false hit")
	}
}

// TestSparseTabStress: the open-addressed table must survive growth and
// dense key clustering while agreeing with a map oracle.
func TestSparseTabStress(t *testing.T) {
	tab := newSparseTab[int](4)
	oracle := map[query.RelSet]int{}
	// Clustered keys: every connected subset of a 16-chain plus a stride.
	g := query.NewGraph(16)
	for i := 0; i < 15; i++ {
		g.AddEdge(i, i+1)
	}
	e := query.NewCsgEnum(g)
	for d := 1; d <= 16; d++ {
		for _, s := range e.Level(d) {
			tab.put(s, int(s)*3)
			oracle[s] = int(s) * 3
		}
	}
	for i := 0; i < 1000; i += 7 {
		s := query.RelSet(i)
		tab.put(s, i)
		oracle[s] = i
	}
	if tab.len() != len(oracle) {
		t.Fatalf("sparseTab len %d != oracle %d", tab.len(), len(oracle))
	}
	for s, want := range oracle {
		if got, ok := tab.get(s); !ok || got != want {
			t.Fatalf("sparseTab[%v] = %v,%v want %v", s, got, ok, want)
		}
	}
	keys := tab.keysSorted()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keysSorted not strictly ascending at %d", i)
		}
	}
}
