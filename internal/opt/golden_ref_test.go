package opt

// This file pins the unified engine to the pre-refactor optimizer, line for
// line. Every seed* function below is a faithful copy of the seed's
// per-algorithm DP (the map-table left-deep DP, the bushy split DP, the
// top-c DP, and the per-bucket black-box loops with a fresh context per
// bucket), kept on the seed's stepCoster shape. TestGoldenEquivalenceSeed
// runs both implementations over a random workload corpus and requires
// byte-identical plan keys and exactly equal costs.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/workload"
)

// seedStepCoster is the seed's step-costing interface (right operand fixed
// to a scan, relation index threaded through).
type seedStepCoster interface {
	joinStep(m cost.Method, left plan.Node, right *plan.Scan, s query.RelSet, j, phase int) float64
	sortStep(input plan.Node, phase int) float64
}

type seedFixedCoster struct {
	ctx *Context
	mem float64
}

func (f seedFixedCoster) joinStep(m cost.Method, left plan.Node, right *plan.Scan, _ query.RelSet, _, _ int) float64 {
	return cost.JoinCost(m, left.OutPages(), right.OutPages(), f.mem)
}

func (f seedFixedCoster) sortStep(input plan.Node, _ int) float64 {
	return cost.SortCost(input.OutPages(), f.mem)
}

type seedExpCoster struct {
	ctx *Context
	dm  *stats.Dist
}

func (e seedExpCoster) joinStep(m cost.Method, left plan.Node, right *plan.Scan, _ query.RelSet, _, _ int) float64 {
	return cost.ExpJoinCostMem(m, left.OutPages(), right.OutPages(), e.dm)
}

func (e seedExpCoster) sortStep(input plan.Node, _ int) float64 {
	pages := input.OutPages()
	return e.dm.Expect(func(mem float64) float64 { return cost.SortCost(pages, mem) })
}

type seedPhasedCoster struct {
	ctx    *Context
	phases []*stats.Dist
}

func (p seedPhasedCoster) distAt(phase int) *stats.Dist {
	if phase < 0 {
		phase = 0
	}
	if phase >= len(p.phases) {
		phase = len(p.phases) - 1
	}
	return p.phases[phase]
}

func (p seedPhasedCoster) joinStep(m cost.Method, left plan.Node, right *plan.Scan, _ query.RelSet, _, phase int) float64 {
	return cost.ExpJoinCostMem(m, left.OutPages(), right.OutPages(), p.distAt(phase))
}

func (p seedPhasedCoster) sortStep(input plan.Node, phase int) float64 {
	pages := input.OutPages()
	return p.distAt(phase).Expect(func(mem float64) float64 { return cost.SortCost(pages, mem) })
}

type seedCECoster struct {
	ctx    *Context
	phases []*stats.Dist
	gamma  float64
}

func (c seedCECoster) distAt(phase int) *stats.Dist {
	if phase < 0 {
		phase = 0
	}
	if phase >= len(c.phases) {
		phase = len(c.phases) - 1
	}
	return c.phases[phase]
}

func (c seedCECoster) joinStep(m cost.Method, left plan.Node, right *plan.Scan, _ query.RelSet, _, phase int) float64 {
	a, b := left.OutPages(), right.OutPages()
	return certEquiv(c.distAt(phase), c.gamma, func(mem float64) float64 { return cost.JoinCost(m, a, b, mem) })
}

func (c seedCECoster) sortStep(input plan.Node, phase int) float64 {
	pages := input.OutPages()
	return certEquiv(c.distAt(phase), c.gamma, func(mem float64) float64 { return cost.SortCost(pages, mem) })
}

type seedDistCoster struct {
	ctx *Context
	dm  *stats.Dist
}

func (dc seedDistCoster) joinStep(m cost.Method, left plan.Node, right *plan.Scan, s query.RelSet, j, _ int) float64 {
	da := dc.ctx.PagesDistOf(s.Without(j))
	db := dc.ctx.PagesDistOf(query.NewRelSet(j))
	return cost.ExpJoinCost3(m, da, db, dc.dm)
}

func (dc seedDistCoster) sortStep(input plan.Node, _ int) float64 {
	dp := dc.ctx.PagesDistOf(input.Rels())
	return stats.ExpectProduct(dp, dc.dm, cost.SortCost)
}

// seedRunDP is the seed's left-deep dynamic program (map-keyed DP table).
func seedRunDP(ctx *Context, sc seedStepCoster) (*Result, error) {
	n := ctx.Q.NumRels()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty query")
	}
	if n == 1 {
		return seedFinishSingle(ctx, sc)
	}

	best := make(map[query.RelSet]dpEntry, 1<<uint(n))
	for i := 0; i < n; i++ {
		s := ctx.BestScan(i)
		best[query.NewRelSet(i)] = dpEntry{node: s, cost: s.AccessCost()}
	}

	full := query.FullSet(n)
	var rootBest dpEntry
	rootBest.cost = math.Inf(1)
	var rootFound bool

	for d := 2; d <= n; d++ {
		query.SubsetsOfSize(n, d, func(s query.RelSet) {
			entry := dpEntry{cost: math.Inf(1)}
			s.ForEach(func(j int) {
				sj := s.Without(j)
				left, ok := best[sj]
				if !ok {
					return
				}
				if !ctx.extensionAllowed(sj, j) {
					return
				}
				scan := ctx.BestScan(j)
				base := left.cost + scan.AccessCost()
				for _, m := range ctx.Opts.methods() {
					stepCost := sc.joinStep(m, left.node, scan, s, j, d-2)
					total := base + stepCost
					if total < entry.cost {
						entry = dpEntry{
							node: ctx.NewJoin(left.node, scan, m, s, j),
							cost: total,
						}
					}
					if s == full && !ctx.Opts.NaiveOrderHandling {
						cand := ctx.NewJoin(left.node, scan, m, s, j)
						finished, added := ctx.FinishPlan(cand)
						ft := total
						if added {
							ft += sc.sortStep(cand, d-2)
						}
						if ft < rootBest.cost {
							rootBest = dpEntry{node: finished, cost: ft}
							rootFound = true
						}
					}
				}
			})
			if !math.IsInf(entry.cost, 1) {
				best[s] = entry
			}
		})
	}
	if ctx.Opts.NaiveOrderHandling {
		entry, ok := best[full]
		if !ok {
			return nil, fmt.Errorf("opt: no plan found (disconnected lattice?)")
		}
		finished, added := ctx.FinishPlan(entry.node)
		total := entry.cost
		if added {
			total += sc.sortStep(entry.node, n-2)
		}
		return &Result{Plan: finished, Cost: total, Count: ctx.Count}, nil
	}
	if !rootFound {
		return nil, fmt.Errorf("opt: no plan found (disconnected lattice?)")
	}
	return &Result{Plan: rootBest.node, Cost: rootBest.cost, Count: ctx.Count}, nil
}

func seedFinishSingle(ctx *Context, sc seedStepCoster) (*Result, error) {
	bestCost := math.Inf(1)
	var bestNode plan.Node
	for _, s := range ctx.Scans(0) {
		finished, added := ctx.FinishPlan(s)
		total := s.AccessCost()
		if added {
			total += sc.sortStep(s, 0)
		}
		if total < bestCost {
			bestCost, bestNode = total, finished
		}
	}
	if bestNode == nil {
		return nil, fmt.Errorf("opt: no access path")
	}
	return &Result{Plan: bestNode, Cost: bestCost, Count: ctx.Count}, nil
}

// seedBushyCoster is the seed's bushy pricing interface (sizes only).
type seedBushyCoster interface {
	join(m cost.Method, aPages, bPages float64) float64
	sort(pages float64) float64
}

type seedBushyFixed struct{ mem float64 }

func (b seedBushyFixed) join(m cost.Method, a, bp float64) float64 {
	return cost.JoinCost(m, a, bp, b.mem)
}
func (b seedBushyFixed) sort(pages float64) float64 { return cost.SortCost(pages, b.mem) }

type seedBushyExp struct{ dm *stats.Dist }

func (b seedBushyExp) join(m cost.Method, a, bp float64) float64 {
	return cost.ExpJoinCostMem(m, a, bp, b.dm)
}

func (b seedBushyExp) sort(pages float64) float64 {
	return b.dm.Expect(func(mem float64) float64 { return cost.SortCost(pages, mem) })
}

type seedSortOnly struct{ bc seedBushyCoster }

func (s seedSortOnly) joinStep(cost.Method, plan.Node, *plan.Scan, query.RelSet, int, int) float64 {
	panic("opt: joinStep on single-relation query")
}

func (s seedSortOnly) sortStep(input plan.Node, _ int) float64 {
	return s.bc.sort(input.OutPages())
}

// seedBushyDP is the seed's all-splits bushy dynamic program.
func seedBushyDP(ctx *Context, bc seedBushyCoster) (*Result, error) {
	n := ctx.Q.NumRels()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty query")
	}
	if n == 1 {
		return seedFinishSingle(ctx, seedSortOnly{bc})
	}
	best := make(map[query.RelSet]dpEntry, 1<<uint(n))
	for i := 0; i < n; i++ {
		s := ctx.BestScan(i)
		best[query.NewRelSet(i)] = dpEntry{node: s, cost: s.AccessCost()}
	}
	full := query.FullSet(n)
	rootBest := dpEntry{cost: math.Inf(1)}
	var rootFound bool

	for d := 2; d <= n; d++ {
		query.SubsetsOfSize(n, d, func(s query.RelSet) {
			entry := dpEntry{cost: math.Inf(1)}
			lowest := query.NewRelSet(s.Members()[0])
			for l := (s - 1) & s; l != 0; l = (l - 1) & s {
				if !l.Contains(lowest) {
					continue
				}
				r := s &^ l
				le, lok := best[l]
				re, rok := best[r]
				if !lok || !rok {
					continue
				}
				if ctx.Opts.AvoidCrossProducts && len(ctx.predsBetween(l, r)) == 0 && !crossUnavoidable(ctx, s) {
					continue
				}
				base := le.cost + re.cost
				for _, m := range ctx.Opts.methods() {
					for _, ord := range [2][2]dpEntry{{le, re}, {re, le}} {
						stepCost := bc.join(m, ord[0].node.OutPages(), ord[1].node.OutPages())
						total := base + stepCost
						if total < entry.cost {
							entry = dpEntry{
								node: ctx.newBushyJoin(ord[0].node, ord[1].node, m, s),
								cost: total,
							}
						}
						if s == full {
							cand := ctx.newBushyJoin(ord[0].node, ord[1].node, m, s)
							finished, added := ctx.FinishPlan(cand)
							ft := total
							if added {
								ft += bc.sort(cand.OutPages())
							}
							if ft < rootBest.cost {
								rootBest = dpEntry{node: finished, cost: ft}
								rootFound = true
							}
						}
					}
				}
			}
			if !math.IsInf(entry.cost, 1) {
				best[s] = entry
			}
		})
	}
	if !rootFound {
		return nil, fmt.Errorf("opt: bushy DP found no plan")
	}
	return &Result{Plan: rootBest.node, Cost: rootBest.cost, Count: ctx.Count}, nil
}

func seedSortTruncate(entries []topEntry, c int) []topEntry {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].cost != entries[j].cost {
			return entries[i].cost < entries[j].cost
		}
		return entries[i].node.Key() < entries[j].node.Key()
	})
	if len(entries) > c {
		entries = entries[:c]
	}
	return entries
}

func seedMergeTopC(left []topEntry, scans []topEntry, stepCost float64, c int,
	build func(l, r topEntry) plan.Node) []topEntry {
	var out []topEntry
	for i := 1; i <= len(left) && i <= c; i++ {
		maxK := c / i
		for k := 1; k <= len(scans) && k <= maxK; k++ {
			l, r := left[i-1], scans[k-1]
			out = append(out, topEntry{
				node: build(l, r),
				cost: l.cost + r.cost + stepCost,
			})
		}
	}
	return out
}

func seedFinishEntry(ctx *Context, sc seedStepCoster, e topEntry, phase int) topEntry {
	finished, added := ctx.FinishPlan(e.node)
	total := e.cost
	if added {
		total += sc.sortStep(e.node, phase)
	}
	return topEntry{node: finished, cost: total}
}

// seedTopCDP is the seed's top-c variant of the dynamic program.
func seedTopCDP(ctx *Context, sc seedStepCoster, c int) ([]topEntry, error) {
	n := ctx.Q.NumRels()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty query")
	}
	scanLists := make([][]topEntry, n)
	for i := 0; i < n; i++ {
		var l []topEntry
		for _, s := range ctx.Scans(i) {
			l = append(l, topEntry{node: s, cost: s.AccessCost()})
		}
		scanLists[i] = seedSortTruncate(l, c)
	}
	if n == 1 {
		var roots []topEntry
		for _, e := range scanLists[0] {
			roots = append(roots, seedFinishEntry(ctx, sc, e, 0))
		}
		return seedSortTruncate(roots, c), nil
	}

	lists := make(map[query.RelSet][]topEntry, 1<<uint(n))
	for i := 0; i < n; i++ {
		lists[query.NewRelSet(i)] = scanLists[i]
	}
	full := query.FullSet(n)
	var roots []topEntry

	for d := 2; d <= n; d++ {
		query.SubsetsOfSize(n, d, func(s query.RelSet) {
			var merged []topEntry
			s.ForEach(func(j int) {
				sj := s.Without(j)
				left := lists[sj]
				if len(left) == 0 || !ctx.extensionAllowed(sj, j) {
					return
				}
				for _, m := range ctx.Opts.methods() {
					stepCost := sc.joinStep(m, left[0].node, scanLists[j][0].node.(*plan.Scan), s, j, d-2)
					merged = append(merged, seedMergeTopC(left, scanLists[j], stepCost, c,
						func(l, r topEntry) plan.Node {
							return ctx.NewJoin(l.node, r.node.(*plan.Scan), m, s, j)
						})...)
				}
			})
			if s == full {
				for _, e := range merged {
					roots = append(roots, seedFinishEntry(ctx, sc, e, d-2))
				}
			}
			lists[s] = seedSortTruncate(merged, c)
		})
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("opt: no plan found")
	}
	return seedSortTruncate(roots, c), nil
}

// seedAlgorithmA is the seed's per-bucket black-box loop: a fresh context
// per bucket invocation.
func seedAlgorithmA(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	seen := map[string]bool{}
	var cands []plan.Node
	for i := 0; i < dm.Len(); i++ {
		ctx, err := NewContext(cat, q, opts)
		if err != nil {
			return nil, err
		}
		res, err := seedRunDP(ctx, seedFixedCoster{ctx: ctx, mem: dm.Value(i)})
		if err != nil {
			return nil, err
		}
		if key := res.Plan.Key(); !seen[key] {
			seen[key] = true
			cands = append(cands, res.Plan)
		}
	}
	best, bestCost := pickLeastExpected(cands, dm)
	if best == nil {
		return nil, fmt.Errorf("opt: algorithm A produced no candidates")
	}
	return &Result{Plan: best, Cost: bestCost}, nil
}

// seedAlgorithmB is the seed's per-bucket top-c loop.
func seedAlgorithmB(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	c := opts.topC()
	seen := map[string]bool{}
	var cands []plan.Node
	for i := 0; i < dm.Len(); i++ {
		ctx, err := NewContext(cat, q, opts)
		if err != nil {
			return nil, err
		}
		roots, err := seedTopCDP(ctx, seedFixedCoster{ctx: ctx, mem: dm.Value(i)}, c)
		if err != nil {
			return nil, err
		}
		for _, r := range roots {
			if key := r.node.Key(); !seen[key] {
				seen[key] = true
				cands = append(cands, r.node)
			}
		}
	}
	best, bestCost := pickLeastExpected(cands, dm)
	if best == nil {
		return nil, fmt.Errorf("opt: algorithm B produced no candidates")
	}
	return &Result{Plan: best, Cost: bestCost}, nil
}

// goldenInstance is one randomly generated catalog/query/distribution.
type goldenInstance struct {
	cat    *catalog.Catalog
	q      *query.SPJ
	opts   Options
	dm     *stats.Dist
	phases []*stats.Dist
	chain  *stats.Chain
	gamma  float64
}

func randomGoldenInstance(t *testing.T, seed int64) goldenInstance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(3) // 3..5 relations: exhaustive pipelined stays fast
	shape := workload.Topology(rng.Intn(4))
	cat := workload.RandomCatalog(rng, workload.CatalogSpec{NumTables: n, SizeSpread: 0.5})
	q, err := workload.RandomQuery(rng, cat, workload.QuerySpec{
		NumRels: n, Shape: shape,
		OrderBy:       rng.Intn(2) == 0,
		SelectionProb: 0.3,
		SelSpread:     0.4,
	})
	if err != nil {
		t.Fatalf("RandomQuery: %v", err)
	}
	b := 2 + rng.Intn(3) // 2..4 memory buckets
	vals := make([]float64, b)
	probs := make([]float64, b)
	v := 100 + rng.Float64()*400
	total := 0.0
	for i := range vals {
		vals[i] = v
		v *= 2 + rng.Float64()*2
		probs[i] = 0.1 + rng.Float64()
		total += probs[i]
	}
	for i := range probs {
		probs[i] /= total
	}
	dm := stats.MustNew(vals, probs)
	// A simple 2-phase schedule plus a lazy random-walk chain over dm's values.
	phases := []*stats.Dist{dm, stats.Point(vals[b-1])}
	p := make([][]float64, b)
	for i := range p {
		p[i] = make([]float64, b)
		p[i][i] = 0.6
		rest := 0.4 / float64(b-1)
		for j := range p[i] {
			if j != i {
				p[i][j] = rest
			}
		}
	}
	return goldenInstance{
		cat: cat, q: q,
		opts:   Options{AvoidCrossProducts: rng.Intn(2) == 0},
		dm:     dm,
		phases: phases,
		chain:  stats.MustNewChain(vals, p),
		gamma:  1e-5,
	}
}

// TestGoldenEquivalenceSeed checks every engine-backed entry point against
// its seed implementation over a random corpus: plans must have
// byte-identical keys and exactly equal (==) objective values.
func TestGoldenEquivalenceSeed(t *testing.T) {
	const instances = 25
	runs := 0
	check := func(name string, inst int, got, want *Result, gotErr, wantErr error) {
		t.Helper()
		runs++
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("instance %d %s: engine err=%v seed err=%v", inst, name, gotErr, wantErr)
		}
		if gotErr != nil {
			return
		}
		if got.Plan.Key() != want.Plan.Key() {
			t.Errorf("instance %d %s: plan mismatch\nengine: %s\nseed:   %s", inst, name, got.Plan.Key(), want.Plan.Key())
		}
		if got.Cost != want.Cost {
			t.Errorf("instance %d %s: cost mismatch engine=%v seed=%v", inst, name, got.Cost, want.Cost)
		}
	}
	for i := 0; i < instances; i++ {
		gi := randomGoldenInstance(t, int64(9000+i))
		newCtx := func() *Context {
			ctx, err := NewContext(gi.cat, gi.q, gi.opts)
			if err != nil {
				t.Fatalf("instance %d: NewContext: %v", i, err)
			}
			return ctx
		}

		// SystemR at the mean and at each bucket value.
		for _, mem := range []float64{gi.dm.Mean(), gi.dm.Value(0)} {
			got, gotErr := SystemR(gi.cat, gi.q, gi.opts, mem)
			ctx := newCtx()
			want, wantErr := seedRunDP(ctx, seedFixedCoster{ctx: ctx, mem: mem})
			check(fmt.Sprintf("SystemR(%g)", mem), i, got, want, gotErr, wantErr)
		}

		// Algorithm C (static distribution).
		{
			got, gotErr := AlgorithmC(gi.cat, gi.q, gi.opts, gi.dm)
			ctx := newCtx()
			want, wantErr := seedRunDP(ctx, seedExpCoster{ctx: ctx, dm: gi.dm})
			check("AlgorithmC", i, got, want, gotErr, wantErr)
		}

		// Algorithm C dynamic (Markov phases).
		{
			got, gotErr := AlgorithmCDynamic(gi.cat, gi.q, gi.opts, gi.chain, gi.dm)
			ctx := newCtx()
			want, wantErr := seedRunDP(ctx, seedPhasedCoster{ctx: ctx, phases: PhaseDistsFor(gi.q, gi.chain, gi.dm)})
			check("AlgorithmCDynamic", i, got, want, gotErr, wantErr)
		}

		// Algorithms A and B (per-bucket loops; the engine shares one session).
		{
			got, gotErr := AlgorithmA(gi.cat, gi.q, gi.opts, gi.dm)
			want, wantErr := seedAlgorithmA(gi.cat, gi.q, gi.opts, gi.dm)
			check("AlgorithmA", i, got, want, gotErr, wantErr)
		}
		{
			got, gotErr := AlgorithmB(gi.cat, gi.q, gi.opts, gi.dm)
			want, wantErr := seedAlgorithmB(gi.cat, gi.q, gi.opts, gi.dm)
			check("AlgorithmB", i, got, want, gotErr, wantErr)
		}

		// Algorithm D (multi-parameter distributions).
		{
			got, gotErr := AlgorithmD(gi.cat, gi.q, gi.opts, gi.dm)
			ctx := newCtx()
			want, wantErr := seedRunDP(ctx, seedDistCoster{ctx: ctx, dm: gi.dm})
			check("AlgorithmD", i, got, want, gotErr, wantErr)
		}

		// Bushy DPs.
		{
			mem := gi.dm.Mean()
			got, gotErr := BushySystemR(gi.cat, gi.q, gi.opts, mem)
			want, wantErr := seedBushyDP(newCtx(), seedBushyFixed{mem: mem})
			check("BushySystemR", i, got, want, gotErr, wantErr)
		}
		{
			got, gotErr := BushyAlgorithmC(gi.cat, gi.q, gi.opts, gi.dm)
			want, wantErr := seedBushyDP(newCtx(), seedBushyExp{dm: gi.dm})
			check("BushyAlgorithmC", i, got, want, gotErr, wantErr)
		}

		// Exponential-utility DP (independent per-phase memory).
		{
			got, gotErr := ExpUtilityDP(gi.cat, gi.q, gi.opts, gi.phases, gi.gamma)
			ctx := newCtx()
			want, wantErr := seedRunDP(ctx, seedCECoster{ctx: ctx, phases: gi.phases, gamma: gi.gamma})
			check("ExpUtilityDP", i, got, want, gotErr, wantErr)
		}

		// Pipelined space (exhaustive under the pipeline phase model).
		{
			got, gotErr := ExhaustivePipelined(gi.cat, gi.q, gi.opts, gi.phases)
			want, wantErr := Exhaustive(gi.cat, gi.q, gi.opts, func(p plan.Node) float64 {
				return plan.ExpCostPipelined(p, gi.phases)
			})
			check("ExhaustivePipelined", i, got, want, gotErr, wantErr)
		}
	}
	if runs < 200 {
		t.Fatalf("golden corpus too small: %d runs, want >= 200", runs)
	}
	t.Logf("golden equivalence: %d engine-vs-seed runs", runs)
}

// TestGoldenEquivalenceNaiveOrder pins the NaiveOrderHandling ablation path
// of the left-deep DP, which the main corpus (random OrderBy) exercises
// only with the default root handling.
func TestGoldenEquivalenceNaiveOrder(t *testing.T) {
	for i := 0; i < 5; i++ {
		gi := randomGoldenInstance(t, int64(7700+i))
		gi.opts.NaiveOrderHandling = true
		got, gotErr := AlgorithmC(gi.cat, gi.q, gi.opts, gi.dm)
		ctx, err := NewContext(gi.cat, gi.q, gi.opts)
		if err != nil {
			t.Fatal(err)
		}
		want, wantErr := seedRunDP(ctx, seedExpCoster{ctx: ctx, dm: gi.dm})
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("instance %d: engine err=%v seed err=%v", i, gotErr, wantErr)
		}
		if gotErr == nil && (got.Plan.Key() != want.Plan.Key() || got.Cost != want.Cost) {
			t.Errorf("instance %d: naive-order mismatch: engine (%s, %v) vs seed (%s, %v)",
				i, got.Plan.Key(), got.Cost, want.Plan.Key(), want.Cost)
		}
	}
}
