package opt

import (
	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// This file implements the decision-theoretic sampling analysis of [SBM93],
// which the paper singles out (§2.3) as "the one perhaps closest to that
// advocated here in its view of query optimization as a decision problem
// and its aim of minimizing expected cost", and suggests combining with LEC
// optimization (§3.6: "the ideas of [SBM93] for deciding when to sample may
// also be usefully applied here").
//
// The question: before optimizing, is it worth paying to *observe* an
// uncertain parameter (sample a predicate's selectivity, probe the buffer
// manager)? The classical answer is the expected value of perfect
// information:
//
//	EVPI = E[Φ(LEC plan)] − E_v[ min_p Φ(p, v) ]
//
// the gap between committing to the single best-in-expectation plan and
// being allowed to re-plan after seeing the true value. Observation is
// worthwhile exactly when its cost is below the EVPI.

// InfoValue reports the value-of-information analysis for the memory
// parameter.
type InfoValue struct {
	// LECCost is E[Φ] of the plan chosen without observing (Algorithm C).
	LECCost float64
	// InformedCost is E_v[Φ of the best plan at v]: optimize after
	// observing the true value (the [INSS92] parametric-table bound).
	InformedCost float64
	// EVPI = LECCost − InformedCost ≥ 0.
	EVPI float64
}

// ShouldObserve reports whether paying observationCost to learn the true
// parameter value before planning is worthwhile.
func (v InfoValue) ShouldObserve(observationCost float64) bool {
	return observationCost < v.EVPI
}

// MemoryEVPI computes the value of observing the true memory value before
// planning, under the memory distribution dm.
func MemoryEVPI(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (InfoValue, error) {
	lec, err := AlgorithmC(cat, q, opts, dm)
	if err != nil {
		return InfoValue{}, err
	}
	informed := 0.0
	for i := 0; i < dm.Len(); i++ {
		res, err := SystemR(cat, q, opts, dm.Value(i))
		if err != nil {
			return InfoValue{}, err
		}
		informed += dm.Prob(i) * res.Cost
	}
	v := InfoValue{LECCost: lec.Cost, InformedCost: informed, EVPI: lec.Cost - informed}
	if v.EVPI < 0 {
		// Numeric noise only: informed planning dominates by construction.
		v.EVPI = 0
	}
	return v, nil
}

// SelectivityEVPI computes the value of sampling join predicate predIdx to
// learn its true selectivity before planning, with everything else
// (memory) still distributed. For each selectivity value σ in the
// predicate's distribution, the query is re-optimized with the predicate
// pinned to σ; the informed cost is the expectation over σ of those
// conditionally-optimal expected costs. This is the [SBM93] "is sampling
// worth its cost" computation in LEC terms.
func SelectivityEVPI(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist, predIdx int) (InfoValue, error) {
	base, err := AlgorithmD(cat, q, opts, dm)
	if err != nil {
		return InfoValue{}, err
	}
	sd := q.Joins[predIdx].SelectivityDist()
	informed := 0.0
	for i := 0; i < sd.Len(); i++ {
		pinned := *q
		pinned.Joins = append([]query.JoinPred(nil), q.Joins...)
		pinned.Joins[predIdx].Selectivity = sd.Value(i)
		pinned.Joins[predIdx].SelDist = stats.Point(sd.Value(i))
		res, err := AlgorithmD(cat, &pinned, opts, dm)
		if err != nil {
			return InfoValue{}, err
		}
		informed += sd.Prob(i) * res.Cost
	}
	v := InfoValue{LECCost: base.Cost, InformedCost: informed, EVPI: base.Cost - informed}
	if v.EVPI < 0 {
		v.EVPI = 0
	}
	return v, nil
}

// EVPIUpperBoundsRegret is a documented identity used by tests: for any
// plan p chosen without information, E[Φ(p)] − InformedCost ≥ EVPI exactly
// when p is the LEC plan; a worse plan has a larger gap.
func EVPIUpperBoundsRegret(p plan.Node, dm *stats.Dist, v InfoValue) bool {
	return plan.ExpCost(p, dm)-v.InformedCost >= v.EVPI-1e-9
}
