package opt

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// This file implements the coarse-to-fine evaluation strategy of paper
// §3.7: "If there are j algorithms being compared at a given node in the
// dag, the expected cost of only one of them needs to be computed
// accurately, since the other plans are pruned. ... we can start with a
// coarse bucketing strategy to do the pruning, and then refine the buckets
// as necessary." Each join step first prices every method with a cheap
// coarse distribution; only methods within a safety margin of the coarse
// winner are re-priced with the fine distribution.

// refinedCoster prices steps coarse-first.
type refinedCoster struct {
	ctx    *Context
	fine   *stats.Dist
	coarse *stats.Dist
	// margin is the relative slack for surviving the coarse cut.
	margin float64

	// per-(left,right,phase) memo of the methods' coarse costs, so the
	// pruning decision sees all methods of one step together.
	pending map[stepKey]map[cost.Method]float64
}

type stepKey struct {
	a, b  float64
	phase int
}

func (rc *refinedCoster) joinStep(m cost.Method, left, right plan.Node, _ query.RelSet, phase int) float64 {
	a, b := left.OutPages(), right.OutPages()
	key := stepKey{a, b, phase}
	coarseCosts, ok := rc.pending[key]
	if !ok {
		// First visit of this step: price every method coarsely, once.
		coarseCosts = make(map[cost.Method]float64, len(rc.ctx.Opts.Methods))
		for _, mm := range rc.ctx.Opts.Methods {
			rc.ctx.Count.CostEvals += rc.coarse.Len()
			coarseCosts[mm] = cost.ExpJoinCostMem(mm, a, b, rc.coarse)
		}
		rc.pending[key] = coarseCosts
	}
	best := math.Inf(1)
	for _, c := range coarseCosts {
		if c < best {
			best = c
		}
	}
	if coarseCosts[m] > best*(1+rc.margin) {
		// Pruned: the coarse estimate stands in (it is an overestimate of
		// interest only; the method cannot win).
		return coarseCosts[m]
	}
	rc.ctx.Count.CostEvals += rc.fine.Len()
	return cost.ExpJoinCostMem(m, a, b, rc.fine)
}

func (rc *refinedCoster) sortStep(input plan.Node, _ int) float64 {
	rc.ctx.Count.CostEvals += rc.fine.Len()
	pages := input.OutPages()
	return rc.fine.Expect(func(mem float64) float64 { return cost.SortCost(pages, mem) })
}

// AlgorithmCRefined runs the expected-cost DP with §3.7 coarse-to-fine
// pruning: methods are screened with a `coarseBuckets`-bucket rebucketing
// of the fine distribution and only near-winners (within `margin`,
// default 0.25) are priced exactly. The returned Result's Cost is the
// chosen plan's exact fine-grained expected cost. Pruning is heuristic: a
// method whose coarse estimate is misleading by more than the margin can
// be lost, so the plan is near-optimal rather than guaranteed-optimal;
// experiment E15 measures the trade.
func AlgorithmCRefined(cat *catalog.Catalog, q *query.SPJ, opts Options, fine *stats.Dist, coarseBuckets int, margin float64) (*Result, error) {
	if coarseBuckets < 1 {
		coarseBuckets = 1
	}
	if margin <= 0 {
		margin = 0.25
	}
	ctx, err := NewContext(cat, q, opts)
	if err != nil {
		return nil, err
	}
	rc := &refinedCoster{
		ctx:     ctx,
		fine:    fine,
		coarse:  stats.Rebucket(fine, coarseBuckets),
		margin:  margin,
		pending: make(map[stepKey]map[cost.Method]float64),
	}
	// A custom pricer rides the engine directly: same left-deep core, same
	// session state, just a non-standard (Coster, Objective) compilation.
	eng := &Optimizer{ctx: ctx, cfg: Config{Coster: StaticParams{Mem: fine}}, pricer: rc}
	res, err := eng.runLeftDeep()
	if err != nil {
		return nil, err
	}
	// Report the exact expected cost of the chosen plan.
	res.Cost = plan.ExpCost(res.Plan, fine)
	return res, nil
}
