package opt

import (
	"math"
	"testing"

	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestExpUtilityDPMatchesExhaustiveIndep: with independent per-phase
// parameters the exponential-utility objective decomposes, so the DP is
// exact (the 2002 analysis's positive case).
func TestExpUtilityDPMatchesExhaustiveIndep(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Chain, seed%2 == 0)
		phases := []*stats.Dist{
			randMemDist3(seed + 1),
			randMemDist3(seed + 2),
			randMemDist3(seed + 3),
		}
		for _, gamma := range []float64{1e-6, 1e-5} {
			dp, err := ExpUtilityDP(cat, q, Options{}, phases, gamma)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			ex, err := ExhaustiveExpUtilityIndep(cat, q, Options{}, phases, gamma)
			if err != nil {
				t.Fatal(err)
			}
			if relDiff(dp.Cost, ex.Cost) > costTol {
				t.Errorf("seed %d γ=%v: DP %v != exhaustive %v", seed, gamma, dp.Cost, ex.Cost)
			}
			if actual := CertaintyEquivalentIndep(dp.Plan, phases, gamma); relDiff(dp.Cost, actual) > costTol {
				t.Errorf("seed %d: reported %v, actual %v", seed, dp.Cost, actual)
			}
		}
	}
}

func TestExpUtilityDPRejectsZeroGamma(t *testing.T) {
	cat, q := randInstance(t, 1, 3, workload.Chain, false)
	if _, err := ExpUtilityDP(cat, q, Options{}, []*stats.Dist{stats.Point(100)}, 0); err == nil {
		t.Error("gamma = 0 accepted")
	}
	if _, err := ExpUtilityDP(cat, q, Options{}, nil, 1e-6); err == nil {
		t.Error("empty phases accepted")
	}
}

// TestCertEquivLimits: as γ → 0 the certainty equivalent approaches the
// mean; for γ > 0 it is ≥ the mean (risk aversion premium), and it is
// monotone in γ.
func TestCertEquivLimits(t *testing.T) {
	d := stats.MustNew([]float64{100, 10000}, []float64{0.5, 0.5})
	id := func(x float64) float64 { return x }
	mean := d.Mean()
	tiny := certEquiv(d, 1e-9, id)
	if math.Abs(tiny-mean)/mean > 1e-3 {
		t.Errorf("certEquiv(γ→0) = %v, want ≈ mean %v", tiny, mean)
	}
	prev := tiny
	for _, g := range []float64{1e-5, 1e-4, 1e-3} {
		ce := certEquiv(d, g, id)
		if ce < prev-1e-9 {
			t.Errorf("certainty equivalent not monotone: γ=%v gives %v < %v", g, ce, prev)
		}
		prev = ce
	}
	if prev < mean {
		t.Errorf("risk-averse CE %v below mean %v", prev, mean)
	}
	// Risk-seeking: CE below the mean.
	if ce := certEquiv(d, -1e-3, id); ce > mean {
		t.Errorf("risk-seeking CE %v above mean %v", ce, mean)
	}
	// Extreme γ must not overflow (log-sum-exp stability).
	if ce := certEquiv(d, 1.0, id); math.IsInf(ce, 0) || math.IsNaN(ce) {
		t.Errorf("certEquiv unstable at large γ: %v", ce)
	}
}

// TestGeneralUtilityDPFailure hunts for an instance where the phase-wise
// utility DP (which assumes decomposition) is strictly beaten by exhaustive
// search under the static shared-memory exponential objective — the 2002
// paper's negative answer to "can we always expect DP to work?".
func TestGeneralUtilityDPFailure(t *testing.T) {
	const gamma = 1e-5
	found := false
	for seed := int64(0); seed < 120 && !found; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Clique, seed%2 == 0)
		dm := randMemDist3(seed * 7)
		// Run the DP pretending phases are independent copies of dm.
		dp, err := ExpUtilityDP(cat, q, Options{}, []*stats.Dist{dm}, gamma)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := ExhaustiveExpUtilityStatic(cat, q, Options{}, dm, gamma)
		if err != nil {
			t.Fatal(err)
		}
		dpStatic := CertaintyEquivalentStatic(dp.Plan, dm, gamma)
		if dpStatic > ex.Cost*(1+1e-9) {
			found = true
			t.Logf("seed %d: DP plan's static CE %v > optimum %v", seed, dpStatic, ex.Cost)
		}
	}
	if !found {
		t.Error("phase-wise utility DP matched static-objective optimum on all instances; expected a counterexample")
	}
}

// TestRiskProfileExample11: Plan 1 of Example 1.1 carries all the risk.
func TestRiskProfileExample11(t *testing.T) {
	cat, q, dm := workload.Example11()
	lsc, err := LSCPlan(cat, q, Options{}, dm, true)
	if err != nil {
		t.Fatal(err)
	}
	lec, err := AlgorithmC(cat, q, Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	p1 := NewRiskProfile(lsc.Plan, dm)
	p2 := NewRiskProfile(lec.Plan, dm)
	if p1.Variance <= 0 {
		t.Errorf("plan 1 variance %v, want > 0", p1.Variance)
	}
	if p2.Variance != 0 {
		t.Errorf("plan 2 variance %v, want 0", p2.Variance)
	}
	if p1.StdDev != math.Sqrt(p1.Variance) {
		t.Error("StdDev inconsistent")
	}
	// The 95th percentile of plan 1 is its bad case (memory = 700).
	if want := plan.Cost(lsc.Plan, 700); p1.P95 != want {
		t.Errorf("plan1 P95 = %v, want %v", p1.P95, want)
	}
}

// TestMeanStdPlan: with λ = 0 the LEC plan wins; with large λ the
// zero-variance plan wins even if its mean were slightly worse.
func TestMeanStdPlan(t *testing.T) {
	cat, q, dm := workload.Example11()
	lsc, _ := LSCPlan(cat, q, Options{}, dm, true)
	lec, _ := AlgorithmC(cat, q, Options{}, dm)
	cands := []plan.Node{lsc.Plan, lec.Plan}
	pick0, v0 := MeanStdPlan(cands, dm, 0)
	if pick0.Key() != lec.Plan.Key() {
		t.Errorf("λ=0 picked %s", pick0.Key())
	}
	if relDiff(v0, lec.Cost) > costTol {
		t.Errorf("λ=0 objective %v, want %v", v0, lec.Cost)
	}
	pickBig, _ := MeanStdPlan(cands, dm, 100)
	if pickBig.Key() != lec.Plan.Key() {
		t.Errorf("λ=100 picked %s (the risky plan)", pickBig.Key())
	}
	if p, _ := MeanStdPlan(nil, dm, 1); p != nil {
		t.Error("empty candidate set returned a plan")
	}
}
