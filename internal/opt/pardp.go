package opt

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/query"
)

// This file implements the level-synchronized parallel DP core. The lattice
// of relation subsets decomposes into levels by subset size, and a size-d
// subset's solution depends only on sizes < d — so each level's subsets are
// independent of one another and can be solved concurrently, with a barrier
// (and a deterministic, task-ordered merge) between levels. Determinism is
// the design's first constraint: Parallelism: 1 and Parallelism: N produce
// byte-identical plans, costs, Stats and traces for runs that complete,
// because
//
//   - each subset's work is a pure function of the fully-merged lower
//     levels, evaluated with the same inner iteration orders as the
//     sequential DP;
//   - results are stored by task index and merged into the DP table (and
//     the trace) in task order, which is the sequential visiting order (the
//     effective enumerator's ascending level order: query.SubsetsOfSize for
//     the exhaustive sweep, the cached csg levels for the connected one);
//   - counters are sharded per worker shell and merged with the commutative
//     Counters.Add; memo-hit totals are schedule-independent because the
//     shared memos compute each subset exactly once under the run's locks
//     (hits = calls − distinct subsets, however the calls interleave);
//   - the arena interns one canonical node per structure, and within a
//     level each candidate structure is built by exactly one task, so
//     PlansBuilt/ArenaHits totals do not depend on worker interleaving.
//
// Only interruption *trip points* (budget, cancellation) are
// schedule-dependent under Parallelism ≥ 2, because the shared meters
// advance in schedule order; completed runs never observe them.

// parRun is the shared state of one level-synchronized parallel run: the
// locks guarding the session's shared structures, the cooperative-stop
// flag, the first interruption cause, and the run-total meters the shared
// budget is enforced against. Lock order: arenaMu before memoMu (NewJoin
// holds the arena lock while reading the size memos); neither is ever taken
// while holding the other in the opposite order.
type parRun struct {
	arenaMu sync.Mutex // guards ctx.arena (plan interning) and node init
	memoMu  sync.Mutex // guards subsetRows/subsetPages/subsetRowDist/bucketErr

	stop    atomic.Bool // cooperative stop: set by the first interruption
	causeMu sync.Mutex
	cause   error // first interruption cause across all workers

	// Shared budget meters. The session totals at run start are the bases;
	// workers publish their private counter deltas to the atomics at every
	// checkpoint, so base + atomic is the run-wide total the budget is
	// compared against.
	evalsBase   int
	subsetsBase int
	evals       atomic.Int64
	subsets     atomic.Int64

	busyNanos atomic.Int64 // summed per-worker busy time (metrics only)
}

// setCause records the first interruption cause and raises the stop flag.
func (p *parRun) setCause(cause error) {
	p.causeMu.Lock()
	if p.cause == nil {
		p.cause = cause
	}
	p.causeMu.Unlock()
	p.stop.Store(true)
}

// firstCause returns the first recorded interruption cause, if any.
func (p *parRun) firstCause() error {
	p.causeMu.Lock()
	defer p.causeMu.Unlock()
	return p.cause
}

// workerCount resolves Options.Parallelism to the worker count: 0 and 1 are
// the sequential DP, N ≥ 2 the parallel driver.
func (o *Optimizer) workerCount() int {
	if w := o.ctx.Opts.Parallelism; w > 1 {
		return w
	}
	return 1
}

// runLeftDeepParallel is the level-synchronized parallel form of
// runLeftDeep.
func (o *Optimizer) runLeftDeepParallel(workers int) (*Result, error) {
	return o.runLevelSync(workers, false)
}

// runBushyParallel is the level-synchronized parallel form of runBushy.
func (o *Optimizer) runBushyParallel(workers int) (*Result, error) {
	return o.runLevelSync(workers, true)
}

// newWorkerShell builds one worker's private view of the session: a value
// copy of the root context sharing the catalog, query, memos, arena and
// parallel run state through pointers, with zeroed counters, marks and
// timing shards, and no recorder (the root flushes trace artifacts during
// the merge). The shell's counter shard is merged into the root with the
// commutative Counters.Add after the level loop.
func newWorkerShell(root *Context) *Context {
	sh := *root
	sh.Count = Counters{}
	sh.trace = nil
	sh.stopCause = nil
	sh.pollCountdown = 1
	sh.nonFiniteMark = 0
	sh.metricsMark = Counters{}
	sh.costingNanos = 0
	sh.bucketingNanos = 0
	sh.parEvalMark = 0
	sh.parSubsetMark = 0
	return &sh
}

// runLevelSync is the level-synchronized parallel DP driver for both the
// left-deep and bushy spaces. Per lattice level it collects the level's
// subsets in sequential visiting order, fans them out to min(workers,
// subsets) goroutines pulling tasks from a shared cursor, waits at the
// level barrier, and merges the per-task results into the DP table, the
// trace and the root-candidate fold *in task order*. The barrier gives the
// happens-before edge between one level's writes and the next level's
// reads; the task-order merge makes every completed run byte-identical to
// the sequential walk (see the file comment for the full argument).
func (o *Optimizer) runLevelSync(workers int, bushy bool) (*Result, error) {
	ctx := o.ctx
	n := ctx.Q.NumRels()
	if n == 0 {
		return nil, fmt.Errorf("opt: empty query")
	}
	if n == 1 {
		return finishSingle(ctx, o.pricer)
	}
	best := o.dpTable(n)
	for i := 0; i < n; i++ {
		s := ctx.BestScan(i)
		best.put(query.NewRelSet(i), dpEntry{node: s, cost: s.AccessCost()})
	}
	if !bushy {
		ctx.traceScans()
	}
	full := query.FullSet(n)
	rootBest := dpEntry{cost: math.Inf(1)}
	var rootFound bool

	p := &parRun{evalsBase: ctx.Count.CostEvals, subsetsBase: ctx.Count.Subsets}
	ctx.par = p
	defer func() { ctx.par = nil }()

	shells := make([]*Context, workers)
	pricers := make([]stepPricer, workers)
	batchers := make([]batchStepPricer, workers)
	for w := 0; w < workers; w++ {
		shells[w] = newWorkerShell(ctx)
		pricers[w] = o.compileFor(shells[w])
		batchers[w] = batchFor(pricers[w])
	}
	defer func() {
		for _, pr := range pricers {
			releasePricerCaches(pr)
		}
	}()

	metricsOn := ctx.metrics != nil
	if metricsOn {
		ctx.metrics.ParallelRuns.Inc()
	}
	var barrierNanos int64

	var tasks []query.RelSet
	var res []subsetResult
	for d := 2; d <= n && !ctx.stopped(); d++ {
		// Task generation (and csg level materialization) happens on the
		// driver goroutine before the fan-out, in the sequential visiting
		// order — so the per-level batches are identical per enumerator at
		// any parallelism.
		tasks = ctx.appendLevel(tasks[:0], d)
		if cap(res) < len(tasks) {
			res = make([]subsetResult, len(tasks))
		} else {
			// Stale results from a previous level would corrupt the merge.
			res = res[:len(tasks)]
			clear(res)
		}
		nw := workers
		if nw > len(tasks) {
			nw = len(tasks)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		var levelStart time.Time
		var busyBefore int64
		if metricsOn {
			levelStart = time.Now()
			busyBefore = p.busyNanos.Load()
		}
		dd := d
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(sh *Context, pr stepPricer, bp batchStepPricer) {
				defer wg.Done()
				var t0 time.Time
				if metricsOn {
					t0 = time.Now()
				}
				defer func() {
					if metricsOn {
						p.busyNanos.Add(time.Since(t0).Nanoseconds())
					}
					if r := recover(); r != nil {
						// A panicking coster interrupts the run; the driver
						// degrades down the anytime ladder like the
						// sequential engine's recover does.
						sh.Count.PanicsRecovered++
						sh.interrupt(panicError{val: r})
					}
				}()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) || sh.stopped() {
						return
					}
					if bushy {
						res[i] = o.solveBushy(sh, pr, bp, best, tasks[i], dd, full)
					} else {
						res[i] = o.solveLeftDeep(sh, pr, bp, best, tasks[i], dd, full)
					}
				}
			}(shells[w], pricers[w], batchers[w])
		}
		wg.Wait()
		if metricsOn {
			wall := time.Since(levelStart).Nanoseconds()
			if idle := wall*int64(nw) - (p.busyNanos.Load() - busyBefore); idle > 0 {
				barrierNanos += idle
			}
		}
		for i := range res {
			applySubset(ctx, best, tasks[i], &res[i], &rootBest, &rootFound)
		}
	}

	// Fold the worker shards into the root session: counters via the
	// commutative Add, timing shards by sum. Arena gauges come from the
	// shared arena at snapshot time; budget meters already flowed through
	// the parRun atomics.
	for _, sh := range shells {
		ctx.Count.Add(sh.Count)
		ctx.costingNanos += sh.costingNanos
		ctx.bucketingNanos += sh.bucketingNanos
	}
	if cause := p.firstCause(); cause != nil && ctx.stopCause == nil {
		ctx.stopCause = cause
	}
	if metricsOn {
		ctx.metrics.WorkerBusySeconds.Add(float64(p.busyNanos.Load()) / 1e9)
		ctx.metrics.BarrierWaitSeconds.Add(float64(barrierNanos) / 1e9)
	}

	if bushy {
		return o.finishBushy(ctx, rootBest, rootFound)
	}
	return o.finishLeftDeep(ctx, o.pricer, best, full, n, rootBest, rootFound)
}
