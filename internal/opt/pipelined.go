package opt

import (
	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// ExhaustivePipelined minimizes expected cost under the pipeline-aware
// phase model of paper §4 ("pipelined joins should be treated together as a
// single phase"): phaseDists[k] is the memory distribution of pipeline
// phase k. No simple dynamic program computes this objective — a join's
// phase index depends on the *methods* of the joins below it, so the
// per-subset principle of optimality breaks (the same subtlety that breaks
// general utility DPs). Brute force over left-deep plans is the reference
// answer; the per-join-phase DP (AlgorithmCDynamic) is the practical
// approximation whose quality tests and experiment F-level checks measure.
func ExhaustivePipelined(cat *catalog.Catalog, q *query.SPJ, opts Options, phaseDists []*stats.Dist) (*Result, error) {
	return Exhaustive(cat, q, opts, func(p plan.Node) float64 {
		return plan.ExpCostPipelined(p, phaseDists)
	})
}
