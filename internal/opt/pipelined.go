package opt

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// This file implements the pipeline-aware search space of paper §4
// ("pipelined joins should be treated together as a single phase"): a
// join's phase index depends on the *methods* of the joins below it, so the
// per-subset principle of optimality breaks (the same subtlety that breaks
// general utility DPs) and no simple dynamic program computes the
// objective. The engine therefore searches this space by enumerating every
// finished left-deep plan and scoring it with the configured pricer at the
// plan's actual pipeline phases; the per-join-phase DP (AlgorithmCDynamic)
// is the practical approximation whose quality tests and experiment F-level
// checks measure.

// runPipelined enumerates left-deep plans and returns the one minimizing
// the pricer's objective under the pipeline-aware phase model.
func (o *Optimizer) runPipelined() (*Result, error) {
	ctx, pr := o.ctx, o.pricer
	var best plan.Node
	bestVal := math.Inf(1)
	err := ctx.enumerateLeftDeep(func(p plan.Node) {
		// The enumeration already checks stopped() while recursing; this
		// guard covers a budget that trips mid-evaluation of the previous
		// plan. best stays the anytime answer: every fully-scored plan is a
		// finished left-deep plan, so an interrupted run hands OptimizeCtx a
		// valid RungPartial candidate.
		if ctx.stopped() {
			return
		}
		v := evalPipelined(ctx, pr, p)
		if v < bestVal {
			best, bestVal = p, v
		}
	})
	if err != nil {
		return nil, err
	}
	if ctx.stopped() {
		if best != nil {
			return &Result{Plan: best, Cost: bestVal, Count: ctx.snapshotCount()}, nil
		}
		return nil, ctx.stopCause
	}
	if best == nil {
		return nil, fmt.Errorf("opt: pipelined search found no plan")
	}
	return &Result{Plan: best, Cost: bestVal, Count: ctx.snapshotCount()}, nil
}

// evalPipelined scores one finished plan: each join is priced at its
// pipeline phase, and a final sort at the last phase. The walk mirrors
// plan.ExpCostPipelined exactly, so with an expected-cost pricer the two
// agree bit for bit. Steps are priced through the Context's fail-soft
// wrappers, which guard non-finite costs and trip the budget meters.
func evalPipelined(ctx *Context, pr stepPricer, root plan.Node) float64 {
	phases := plan.PipelinePhases(root)
	total := 0.0
	joinIdx := 0
	plan.Walk(root, func(m plan.Node) {
		switch v := m.(type) {
		case *plan.Scan:
			total += v.AccessCost()
		case *plan.Join:
			total += ctx.priceJoin(pr, v.Method, v.Left, v.Right, v.Rels(), phases[joinIdx])
			joinIdx++
		case *plan.Sort:
			if !plan.SatisfiesOrder(v.Input, v.Key_) {
				last := 0
				if len(phases) > 0 {
					last = phases[len(phases)-1]
				}
				total += ctx.priceSort(pr, v.Input, last)
			}
		}
	})
	return total
}

// ExhaustivePipelined minimizes expected cost over the pipelined space:
// phaseDists[k] is the memory distribution of pipeline phase k. It is the
// reference answer for the pipeline-aware model — kept as an entry point
// because experiments compare it against the per-join-phase DP.
func ExhaustivePipelined(cat *catalog.Catalog, q *query.SPJ, opts Options, phaseDists []*stats.Dist) (*Result, error) {
	eng, err := NewOptimizer(cat, q, opts, Config{Space: SpacePipelined, Coster: PhasedParams{Phases: phaseDists}})
	if err != nil {
		return nil, err
	}
	return eng.Optimize()
}

// PipelinedVariancePenalized searches the pipelined space for the plan
// minimizing E[cost] + λ·Var[cost] per pipeline phase — risk-sensitive
// pipelined optimization, a Space × Objective combination the pre-engine
// entry points could not express.
func PipelinedVariancePenalized(cat *catalog.Catalog, q *query.SPJ, opts Options, phaseDists []*stats.Dist, lambda float64) (*Result, error) {
	eng, err := NewOptimizer(cat, q, opts, Config{
		Space:     SpacePipelined,
		Coster:    PhasedParams{Phases: phaseDists},
		Objective: VariancePenalized{Lambda: lambda},
	})
	if err != nil {
		return nil, err
	}
	return eng.Optimize()
}
