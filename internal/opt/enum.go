package opt

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/query"
)

// Enumeration selects the subset-enumeration policy of the lattice sweeps:
// which relation subsets the dynamic programs visit, level by level. It is
// the pluggable seam between the System R "all subsets" walk and join-graph-
// aware enumeration.
type Enumeration int

const (
	// EnumExhaustive walks every subset of every size (query.SubsetsOfSize,
	// ascending) — the paper's Algorithms B/C lattice, byte-identical to the
	// pre-seam engine. The zero value, so existing Options keep their exact
	// behavior.
	EnumExhaustive Enumeration = iota
	// EnumConnected walks only the connected subgraphs of the join graph
	// (DPconn-style csg enumeration), in the same ascending order restricted
	// to the connected family. Every plan whose joins all carry predicates
	// has only connected intermediate subsets, so for such winners the
	// result is identical to the exhaustive sweep while the lattice shrinks
	// from 2^n to the graph's connected-subgraph count (n(n+1)/2 for
	// chains). Queries with a disconnected join graph — whose plans *must*
	// contain a cross join — automatically fall back to EnumExhaustive.
	EnumConnected
)

// String implements fmt.Stringer.
func (e Enumeration) String() string {
	switch e {
	case EnumExhaustive:
		return "exhaustive"
	case EnumConnected:
		return "connected"
	default:
		return fmt.Sprintf("Enumeration(%d)", int(e))
	}
}

// ParseEnumeration parses the String form ("exhaustive", "connected").
func ParseEnumeration(s string) (Enumeration, error) {
	switch s {
	case "exhaustive", "":
		return EnumExhaustive, nil
	case "connected":
		return EnumConnected, nil
	default:
		return EnumExhaustive, fmt.Errorf("opt: unknown enumeration %q (want exhaustive or connected)", s)
	}
}

// initEnum resolves the session's effective enumerator. It runs after
// buildJoinIndex (the connected enumerator is built on ctx.conn, the
// per-relation adjacency bitmasks) and before the memos are sized.
func (ctx *Context) initEnum() {
	ctx.enumEff = EnumExhaustive
	if ctx.Opts.Enumeration == EnumConnected {
		g := query.GraphFromAdjacency(ctx.conn)
		if g.Connected() {
			ctx.enumEff = EnumConnected
			ctx.csg = query.NewCsgEnum(g)
		}
	}
	ctx.sizing = ctx.computeSizing()
}

// EffectiveEnumeration returns the enumerator actually driving the session:
// the requested one, except that EnumConnected degrades to EnumExhaustive
// when the join graph is disconnected (some cross join is then mandatory,
// and only the exhaustive lattice contains the disconnected subsets such
// plans are built from).
func (ctx *Context) EffectiveEnumeration() Enumeration { return ctx.enumEff }

// forEachLevel calls f for every level-d subset of the effective
// enumeration, in ascending numeric order, and advances the enumerated/
// skipped counters. Both enumerators visit the connected level-d family in
// the same order, which is what keeps the sequential and level-synchronized
// parallel drivers byte-identical per enumerator.
func (ctx *Context) forEachLevel(d int, f func(query.RelSet)) {
	if ctx.enumEff == EnumConnected {
		lvl := ctx.csg.Level(d)
		for _, s := range lvl {
			f(s)
		}
		ctx.countLevel(d, len(lvl))
		return
	}
	n := ctx.Q.NumRels()
	emitted := 0
	query.SubsetsOfSize(n, d, func(s query.RelSet) {
		emitted++
		f(s)
	})
	ctx.countLevel(d, emitted)
}

// appendLevel appends the level-d subsets to buf in ascending order (the
// parallel driver's task-list form of forEachLevel), advancing the same
// counters. The connected level cache is copied, never aliased, so callers
// may reuse buf.
func (ctx *Context) appendLevel(buf []query.RelSet, d int) []query.RelSet {
	if ctx.enumEff == EnumConnected {
		lvl := ctx.csg.Level(d)
		ctx.countLevel(d, len(lvl))
		return append(buf, lvl...)
	}
	n := ctx.Q.NumRels()
	before := len(buf)
	query.SubsetsOfSize(n, d, func(s query.RelSet) { buf = append(buf, s) })
	ctx.countLevel(d, len(buf)-before)
	return buf
}

// countLevel records one level sweep: emitted subsets, and — under the
// connected enumerator — the disconnected subsets pruned without a visit.
// Counted on the driver side only, so totals are schedule-independent.
func (ctx *Context) countLevel(d, emitted int) {
	ctx.Count.SubsetsEnumerated += emitted
	if ctx.enumEff == EnumConnected {
		ctx.Count.SubsetsSkipped += int(query.Binomial(ctx.Q.NumRels(), d)) - emitted
	}
}

// memoSizing is the enumerator-predicted shape of the session's per-subset
// tables: dense 2^n arrays when the predicted live-subset count justifies
// them, open-addressed sparse tables otherwise. All tables stay lazily
// allocated — a Context that never runs the lattice allocates none of them.
type memoSizing struct {
	n       int
	dense   bool
	predict int // predicted live subsets; the sparse capacity hint
}

const (
	// denseMemoMaxRels is the absolute ceiling for dense tables: past it a
	// 2^n array would dwarf the working set regardless of prediction.
	denseMemoMaxRels = 20
	// denseSmallMaxRels always gets dense tables: 2^12 entries is ≤ 32 KiB
	// per table, cheaper than any hashing.
	denseSmallMaxRels = 12
	// sizingCountCap bounds how much of the connected lattice is
	// materialized just to size the tables.
	sizingCountCap = 1 << 18
)

// computeSizing predicts the live-subset count from the effective
// enumerator: 2^n for the exhaustive sweep, the (capped) connected-subgraph
// count for the connected one. Dense tables are kept when the prediction is
// a substantial fraction of 2^n — small queries and dense join graphs —
// so the exhaustive paths keep their exact pre-seam representation.
func (ctx *Context) computeSizing() memoSizing {
	n := ctx.Q.NumRels()
	if ctx.enumEff == EnumConnected {
		pred := ctx.csg.CountAtMost(sizingCountCap)
		dense := n <= denseSmallMaxRels ||
			(n <= denseMemoMaxRels && pred >= (1<<uint(n))/8)
		return memoSizing{n: n, dense: dense, predict: pred}
	}
	if n <= denseMemoMaxRels {
		return memoSizing{n: n, dense: true, predict: 1 << uint(n)}
	}
	return memoSizing{n: n, dense: false, predict: sizingCountCap}
}

// sparseTab is an open-addressed hash table keyed by RelSet, the backing of
// every per-subset table when the enumerator predicts a sparse lattice (an
// n=30 chain touches 465 subsets of a 2^30 space). Keys are stored +1 so
// the zero slot means empty; Fibonacci multiplicative hashing spreads the
// clustered bitmask keys; load is kept under ~0.7 by doubling.
type sparseTab[V any] struct {
	keys  []uint32 // key+1; 0 marks an empty slot
	vals  []V
	used  int
	shift uint
}

// newSparseTab returns a table pre-sized for about `hint` entries.
func newSparseTab[V any](hint int) *sparseTab[V] {
	slots := 16
	for slots < hint*3/2 && slots < 1<<16 {
		slots <<= 1
	}
	t := &sparseTab[V]{}
	t.init(slots)
	return t
}

func (t *sparseTab[V]) init(slots int) {
	t.keys = make([]uint32, slots)
	t.vals = make([]V, slots)
	t.used = 0
	t.shift = uint(32 - bits.TrailingZeros(uint(slots)))
}

func (t *sparseTab[V]) slot(k query.RelSet) int {
	return int((uint32(k) + 1) * 2654435769 >> t.shift)
}

func (t *sparseTab[V]) get(k query.RelSet) (V, bool) {
	mask := len(t.keys) - 1
	for i := t.slot(k); ; i = (i + 1) & mask {
		kk := t.keys[i]
		if kk == 0 {
			var zero V
			return zero, false
		}
		if kk == uint32(k)+1 {
			return t.vals[i], true
		}
	}
}

func (t *sparseTab[V]) put(k query.RelSet, v V) { *t.ref(k) = v }

// ref returns a pointer to k's value slot, inserting a zero value first if
// absent. The pointer is invalidated by the next insertion (growth may
// rehash), so callers must not retain it.
func (t *sparseTab[V]) ref(k query.RelSet) *V {
	if (t.used+1)*10 >= len(t.keys)*7 {
		t.grow()
	}
	mask := len(t.keys) - 1
	for i := t.slot(k); ; i = (i + 1) & mask {
		kk := t.keys[i]
		if kk == uint32(k)+1 {
			return &t.vals[i]
		}
		if kk == 0 {
			t.keys[i] = uint32(k) + 1
			t.used++
			return &t.vals[i]
		}
	}
}

func (t *sparseTab[V]) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.init(len(oldKeys) * 2)
	mask := len(t.keys) - 1
	for i, kk := range oldKeys {
		if kk == 0 {
			continue
		}
		j := t.slot(query.RelSet(kk - 1))
		for t.keys[j] != 0 {
			j = (j + 1) & mask
		}
		t.keys[j] = kk
		t.vals[j] = oldVals[i]
		t.used++
	}
}

func (t *sparseTab[V]) len() int { return t.used }

// keysSorted returns the stored keys in ascending order — for consumers
// that need a deterministic iteration (errMemo's schedule-independent sum).
func (t *sparseTab[V]) keysSorted() []query.RelSet {
	out := make([]query.RelSet, 0, t.used)
	for _, kk := range t.keys {
		if kk != 0 {
			out = append(out, query.RelSet(kk-1))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// dpTab is the single-best DP table over lattice nodes, replacing the plain
// 2^n slice: dense when the sizing says so, sparse otherwise. A nil node
// marks an unsolved subset in both representations. Writes happen only on
// the driver side (applySubset, between level barriers), so concurrent
// solver reads need no locking.
type dpTab struct {
	dense  []dpEntry
	sparse *sparseTab[dpEntry]
}

func (t *dpTab) get(s query.RelSet) dpEntry {
	if t.dense != nil {
		return t.dense[s]
	}
	e, _ := t.sparse.get(s)
	return e
}

func (t *dpTab) put(s query.RelSet, e dpEntry) {
	if t.dense != nil {
		t.dense[s] = e
		return
	}
	t.sparse.put(s, e)
}

// forEach calls f for every solved subset in ascending order.
func (t *dpTab) forEach(f func(s query.RelSet, e dpEntry)) {
	if t.dense != nil {
		for s, e := range t.dense {
			if e.node != nil {
				f(query.RelSet(s), e)
			}
		}
		return
	}
	if t.sparse == nil {
		return
	}
	for _, k := range t.sparse.keysSorted() {
		e, _ := t.sparse.get(k)
		if e.node != nil {
			f(k, e)
		}
	}
}

// topTab is the top-c list table (Algorithm B), same dense/sparse split.
type topTab struct {
	dense  [][]topEntry
	sparse *sparseTab[[]topEntry]
}

func (t *topTab) get(s query.RelSet) []topEntry {
	if t.dense != nil {
		return t.dense[s]
	}
	l, _ := t.sparse.get(s)
	return l
}

func (t *topTab) put(s query.RelSet, l []topEntry) {
	if t.dense != nil {
		t.dense[s] = l
		return
	}
	t.sparse.put(s, l)
}

// forEach calls f for every non-empty list in ascending subset order.
func (t *topTab) forEach(f func(s query.RelSet, l []topEntry)) {
	if t.dense != nil {
		for s, l := range t.dense {
			if len(l) > 0 {
				f(query.RelSet(s), l)
			}
		}
		return
	}
	if t.sparse == nil {
		return
	}
	for _, k := range t.sparse.keysSorted() {
		l, _ := t.sparse.get(k)
		if len(l) > 0 {
			f(k, l)
		}
	}
}
