package opt

import (
	"math"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// This file implements the 2002 follow-up question — *what can we expect?*
// — for objectives beyond expected cost. Decision theory says the agent
// should minimize E[u(Φ)] for a (dis)utility function u of the cost. The
// System R dynamic program survives exactly when the objective decomposes
// additively over plan steps:
//
//   - linear u: E[u(Φ)] = u(E[Φ]) up to affine terms, so LEC DP (Algorithm
//     C) is already optimal — risk neutrality;
//   - exponential u(x) = e^{γx} with *independent* per-phase parameters:
//     E[e^{γΣc_k}] = Π_k E[e^{γc_k}], so minimizing the sum of per-phase
//     certainty equivalents Λ_k = (1/γ)·ln E[e^{γc_k}] is an exact DP —
//     risk aversion (γ > 0) or risk seeking (γ < 0);
//   - general u, or exponential u with a *shared* (static) random
//     parameter: the objective does not decompose, the principle of
//     optimality fails, and the DP can return a suboptimal plan. The
//     ExhaustiveExpUtilityStatic ground truth exposes this gap
//     (experiment E9).

// ceCoster scores each phase by its exponential-utility certainty
// equivalent under that phase's own (independent) memory distribution.
type ceCoster struct {
	ctx    *Context
	phases []*stats.Dist
	gamma  float64
}

// certEquiv returns (1/γ)·ln E[e^{γ·f(M)}] computed stably via log-sum-exp.
func certEquiv(d *stats.Dist, gamma float64, f func(float64) float64) float64 {
	// max for the log-sum-exp shift
	maxE := math.Inf(-1)
	exps := make([]float64, d.Len())
	for i := 0; i < d.Len(); i++ {
		e := gamma * f(d.Value(i))
		exps[i] = e
		if e > maxE {
			maxE = e
		}
	}
	sum := 0.0
	for i := 0; i < d.Len(); i++ {
		sum += d.Prob(i) * math.Exp(exps[i]-maxE)
	}
	return (maxE + math.Log(sum)) / gamma
}

func (c ceCoster) joinStep(m cost.Method, left, right plan.Node, _ query.RelSet, phase int) float64 {
	d := phaseDistAt(c.phases, phase)
	c.ctx.Count.CostEvals += d.Len()
	a, b := left.OutPages(), right.OutPages()
	return certEquiv(d, c.gamma, func(mem float64) float64 { return cost.JoinCost(m, a, b, mem) })
}

func (c ceCoster) sortStep(input plan.Node, phase int) float64 {
	d := phaseDistAt(c.phases, phase)
	c.ctx.Count.CostEvals += d.Len()
	pages := input.OutPages()
	return certEquiv(d, c.gamma, func(mem float64) float64 { return cost.SortCost(pages, mem) })
}

// mvCoster scores each step by E[cost] + λ·Var[cost] under that phase's
// own (independent) memory distribution. Variances of independent phases
// add, so minimizing the per-step sum is an exact DP — the mean-variance
// analogue of the exponential-utility decomposition.
type mvCoster struct {
	ctx    *Context
	phases []*stats.Dist
	lambda float64
}

func (c mvCoster) joinStep(m cost.Method, left, right plan.Node, _ query.RelSet, phase int) float64 {
	d := phaseDistAt(c.phases, phase)
	c.ctx.Count.CostEvals += d.Len()
	a, b := left.OutPages(), right.OutPages()
	mean, v := d.ExpectVariance(func(mem float64) float64 { return cost.JoinCost(m, a, b, mem) })
	return mean + c.lambda*v
}

func (c mvCoster) sortStep(input plan.Node, phase int) float64 {
	d := phaseDistAt(c.phases, phase)
	c.ctx.Count.CostEvals += d.Len()
	pages := input.OutPages()
	mean, v := d.ExpectVariance(func(mem float64) float64 { return cost.SortCost(pages, mem) })
	return mean + c.lambda*v
}

// ExpUtilityDP minimizes the exponential-utility objective
// Σ_k Λ_k(phase k) by dynamic programming, which is exact when each phase's
// memory is drawn independently from phases[k] (extending with the last
// entry). γ > 0 is risk-averse, γ < 0 risk-seeking; γ → 0 recovers
// Algorithm C. γ must be non-zero.
func ExpUtilityDP(cat *catalog.Catalog, q *query.SPJ, opts Options, phases []*stats.Dist, gamma float64) (*Result, error) {
	eng, err := NewOptimizer(cat, q, opts, Config{
		Coster:    PhasedParams{Phases: phases},
		Objective: ExponentialUtility{Gamma: gamma},
	})
	if err != nil {
		return nil, err
	}
	return eng.Optimize()
}

// CertaintyEquivalentIndep evaluates the exponential-utility objective
// Σ_k Λ_k of a finished plan under independent per-phase memory — the
// quantity ExpUtilityDP minimizes.
func CertaintyEquivalentIndep(p plan.Node, phases []*stats.Dist, gamma float64) float64 {
	if len(phases) == 0 {
		panic("opt: no phase distributions")
	}
	distAt := func(i int) *stats.Dist {
		if i < 0 {
			i = 0
		}
		if i >= len(phases) {
			i = len(phases) - 1
		}
		return phases[i]
	}
	total := 0.0
	joinIdx := 0
	plan.Walk(p, func(n plan.Node) {
		switch v := n.(type) {
		case *plan.Scan:
			total += v.AccessCost() // deterministic: Λ = cost
		case *plan.Join:
			a, b := v.Left.OutPages(), v.Right.OutPages()
			total += certEquiv(distAt(joinIdx), gamma, func(mem float64) float64 {
				return cost.JoinCost(v.Method, a, b, mem)
			})
			joinIdx++
		case *plan.Sort:
			if !plan.SatisfiesOrder(v.Input, v.Key_) {
				pages := v.Input.OutPages()
				total += certEquiv(distAt(joinIdx-1), gamma, func(mem float64) float64 {
					return cost.SortCost(pages, mem)
				})
			}
		}
	})
	return total
}

// ExhaustiveExpUtilityIndep minimizes Σ_k Λ_k by brute force; with
// independent phases this must agree with ExpUtilityDP (the DP-validity
// half of E9).
func ExhaustiveExpUtilityIndep(cat *catalog.Catalog, q *query.SPJ, opts Options, phases []*stats.Dist, gamma float64) (*Result, error) {
	return Exhaustive(cat, q, opts, func(p plan.Node) float64 {
		return CertaintyEquivalentIndep(p, phases, gamma)
	})
}

// CertaintyEquivalentStatic evaluates the exponential-utility objective
// (1/γ)·ln E[e^{γ·Φ(p, M)}] when ONE memory value M ~ dm is shared by every
// phase. This does NOT decompose over phases, so no DP computes it exactly.
func CertaintyEquivalentStatic(p plan.Node, dm *stats.Dist, gamma float64) float64 {
	return certEquiv(dm, gamma, func(mem float64) float64 { return plan.Cost(p, mem) })
}

// ExhaustiveExpUtilityStatic minimizes the static (shared-memory)
// exponential-utility objective by brute force — the ground truth that the
// phase-wise DP can miss (the DP-failure half of E9).
func ExhaustiveExpUtilityStatic(cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist, gamma float64) (*Result, error) {
	return Exhaustive(cat, q, opts, func(p plan.Node) float64 {
		return CertaintyEquivalentStatic(p, dm, gamma)
	})
}

// RiskProfile summarizes a plan's cost distribution under a static memory
// distribution: the moments and tail behavior a risk-sensitive optimizer
// trades off.
type RiskProfile struct {
	Mean     float64
	Variance float64
	StdDev   float64
	// P95 is the 95th percentile of the cost.
	P95 float64
}

// NewRiskProfile computes a plan's risk profile under dm.
func NewRiskProfile(p plan.Node, dm *stats.Dist) RiskProfile {
	mean, variance := plan.CostVariance(p, dm)
	costDist := dm.Map(func(mem float64) float64 { return plan.Cost(p, mem) })
	return RiskProfile{
		Mean:     mean,
		Variance: variance,
		StdDev:   math.Sqrt(variance),
		P95:      costDist.Quantile(0.95),
	}
}

// MeanStdPlan picks, from a candidate set, the plan minimizing
// E[Φ] + λ·Std[Φ] — the classical mean-risk scalarization. λ = 0 recovers
// the LEC choice.
func MeanStdPlan(cands []plan.Node, dm *stats.Dist, lambda float64) (plan.Node, float64) {
	var best plan.Node
	bestVal := math.Inf(1)
	for _, c := range cands {
		pr := NewRiskProfile(c, dm)
		v := pr.Mean + lambda*pr.StdDev
		if v < bestVal {
			best, bestVal = c, v
		}
	}
	return best, bestVal
}
