package opt

import (
	"context"
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// This file provides the context-aware variants of the package's historical
// entry points. Each XCtx function is the fail-soft form of X: it threads a
// request context (deadline/cancellation) and the Options.Budget through the
// search, and on interruption degrades down the anytime ladder instead of
// failing — the Result's Degraded/Reason/Rung fields report what happened.
// The context-free entry points are now thin wrappers over these with
// context.Background(), which with an unlimited budget reproduces the
// pre-fail-soft behavior exactly.

// SystemRCtx is SystemR under a request context and the Options.Budget.
func SystemRCtx(rc context.Context, cat *catalog.Catalog, q *query.SPJ, opts Options, mem float64) (*Result, error) {
	eng, err := NewOptimizer(cat, q, opts, Config{Coster: FixedParams{Mem: mem}})
	if err != nil {
		return nil, err
	}
	return eng.OptimizeCtx(rc)
}

// AlgorithmCCtx is AlgorithmC under a request context and budget.
func AlgorithmCCtx(rc context.Context, cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	eng, err := NewOptimizer(cat, q, opts, Config{Coster: StaticParams{Mem: dm}})
	if err != nil {
		return nil, err
	}
	return eng.OptimizeCtx(rc)
}

// AlgorithmCDynamicCtx is AlgorithmCDynamic under a request context and
// budget.
func AlgorithmCDynamicCtx(rc context.Context, cat *catalog.Catalog, q *query.SPJ, opts Options, chain *stats.Chain, initial *stats.Dist) (*Result, error) {
	eng, err := NewOptimizer(cat, q, opts, Config{Coster: MarkovParams{Chain: chain, Initial: initial}})
	if err != nil {
		return nil, err
	}
	return eng.OptimizeCtx(rc)
}

// AlgorithmDCtx is AlgorithmD under a request context and budget. The
// returned plan's joins are annotated with their size distributions exactly
// as AlgorithmD does (the greedy fallback builds ordinary left-deep joins,
// so its plans annotate the same way).
func AlgorithmDCtx(rc context.Context, cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	eng, err := NewOptimizer(cat, q, opts, Config{Coster: MultiParams{Mem: dm}})
	if err != nil {
		return nil, err
	}
	res, err := eng.OptimizeCtx(rc)
	if err != nil {
		return nil, err
	}
	annotateSizeDists(eng.ctx, res.Plan)
	return res, nil
}

// LSCPlanCtx is LSCPlan under a request context and budget: the classical
// optimizer run at the distribution's representative value, with the chosen
// plan re-costed in expectation under dm.
func LSCPlanCtx(rc context.Context, cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist, useMode bool) (*Result, error) {
	rep := dm.Mean()
	if useMode {
		rep = dm.Mode()
	}
	res, err := SystemRCtx(rc, cat, q, opts, rep)
	if err != nil {
		return nil, err
	}
	out := *res
	out.Cost = plan.ExpCost(res.Plan, dm)
	return &out, nil
}

// degradeInfo accumulates degradation across a multi-bucket run: the first
// degradation observed wins (later buckets degrade for the same cause).
type degradeInfo struct {
	degraded bool
	reason   DegradeReason
	rung     string
}

func (d *degradeInfo) note(reason DegradeReason, rung string) {
	if !d.degraded {
		d.degraded, d.reason, d.rung = true, reason, rung
	}
}

// apply flags an aggregated Result. It does not touch the Degradations
// counter — the per-bucket runs already counted their own events.
func (d degradeInfo) apply(res *Result) {
	if d.degraded {
		res.Degraded, res.Reason, res.Rung = true, d.reason, d.rung
	}
}

// AlgorithmACtx is AlgorithmA under a request context and budget. The b
// bucket searches share one engine session, so they share one budget; when
// the meter trips mid-session the candidate pool is whatever the completed
// buckets produced (plus the interrupted bucket's degraded plan), and the
// aggregated Result is flagged.
func AlgorithmACtx(rc context.Context, cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	cands, counters, tr, deg, err := algorithmACandidatesCtx(rc, cat, q, opts, dm)
	if err != nil {
		return nil, err
	}
	best, bestCost := pickLeastExpected(cands, dm)
	if best == nil {
		return nil, fmt.Errorf("opt: algorithm A produced no candidates")
	}
	res := &Result{Plan: best, Cost: bestCost, Count: counters}
	deg.apply(res)
	stampTrace(tr, res)
	return res, nil
}

// stampTrace attaches a multi-bucket session's trace snapshot to the
// aggregated Result, stamping the final pick's outcome.
func stampTrace(tr *obs.Trace, res *Result) {
	if tr == nil {
		return
	}
	tr.FinalCost = res.Cost
	tr.Rung = res.Rung
	if res.Degraded {
		tr.Reason = res.Reason.String()
	}
	res.Trace = tr
}

// algorithmACandidatesCtx is the context-aware candidate generator behind
// AlgorithmACtx. Budgets are metered against the session totals: once a
// bucket degrades for an exogenous cause (deadline, budget) the remaining
// buckets are skipped — they would only replay the greedy fallback.
func algorithmACandidatesCtx(rc context.Context, cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) ([]plan.Node, Counters, *obs.Trace, degradeInfo, error) {
	var deg degradeInfo
	// The b per-bucket searches build the candidate pool; a greedy tier
	// serving individual buckets would defeat the pool, so tiering applies
	// at the strategy level, not here.
	opts.Tier = TierDP
	eng, err := NewOptimizer(cat, q, opts, Config{Coster: FixedParams{Mem: dm.Value(0)}})
	if err != nil {
		return nil, Counters{}, nil, deg, err
	}
	seen := map[string]bool{}
	var cands []plan.Node
	for i := 0; i < dm.Len(); i++ {
		if err := eng.SetCoster(FixedParams{Mem: dm.Value(i)}); err != nil {
			return nil, eng.Stats(), eng.traceSnapshot(), deg, err
		}
		res, err := eng.OptimizeCtx(rc)
		if err != nil {
			if len(cands) > 0 && eng.ctx.stopped() {
				// The ladder itself failed for this bucket, but earlier
				// buckets delivered: degrade rather than fail.
				deg.note(eng.ctx.degradeReason(), RungPartial)
				break
			}
			return nil, eng.Stats(), eng.traceSnapshot(), deg, fmt.Errorf("opt: algorithm A at m=%v: %w", dm.Value(i), err)
		}
		key := res.Plan.Key()
		if !seen[key] {
			seen[key] = true
			cands = append(cands, res.Plan)
		}
		if res.Degraded {
			deg.note(res.Reason, res.Rung)
			if res.Reason == DegradeBudget || res.Reason == DegradeDeadline {
				break
			}
		}
	}
	return cands, eng.Stats(), eng.traceSnapshot(), deg, nil
}

// traceSnapshot returns the session recorder's cumulative trace, or nil
// when tracing is disabled. Multi-bucket sessions use it to surface one
// trace spanning every bucket's search.
func (o *Optimizer) traceSnapshot() *obs.Trace {
	if o.ctx.trace == nil {
		return nil
	}
	t := o.ctx.trace.Snapshot()
	t.BucketErrBound = o.ctx.bucketErr.total()
	return t
}

// runTopCGuarded is runTopC under the same recover discipline as the
// single-plan searches: a panicking coster interrupts the session instead of
// escaping Algorithm B's bucket loop.
func (o *Optimizer) runTopCGuarded(c int) (roots []topEntry, err error) {
	defer func() {
		if p := recover(); p != nil {
			o.ctx.Count.PanicsRecovered++
			pe := panicError{val: p}
			o.ctx.interrupt(pe)
			roots, err = nil, pe
		}
	}()
	return o.runTopC(c)
}

// AlgorithmBCtx is AlgorithmB under a request context and budget, with the
// same shared-session budget semantics as AlgorithmACtx.
func AlgorithmBCtx(rc context.Context, cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	cands, counters, tr, deg, err := algorithmBCandidatesCtx(rc, cat, q, opts, dm)
	if err != nil {
		return nil, err
	}
	best, bestCost := pickLeastExpected(cands, dm)
	if best == nil {
		return nil, fmt.Errorf("opt: algorithm B produced no candidates")
	}
	res := &Result{Plan: best, Cost: bestCost, Count: counters}
	deg.apply(res)
	stampTrace(tr, res)
	return res, nil
}

// algorithmBCandidatesCtx generates Algorithm B's candidate pool under a
// request context and budget. One beginRun arms the whole session: the stop
// cause is sticky across buckets, so an interruption in bucket i halts
// buckets i+1..b too. The anytime guarantee holds at the pool level — if the
// interrupted search produced no finished root at all, the greedy fallback
// contributes the guaranteed candidate.
func algorithmBCandidatesCtx(rc context.Context, cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) ([]plan.Node, Counters, *obs.Trace, degradeInfo, error) {
	var deg degradeInfo
	// Same as algorithm A: the bucket searches never tier individually.
	opts.Tier = TierDP
	eng, err := NewOptimizer(cat, q, opts, Config{Coster: FixedParams{Mem: dm.Value(0)}})
	if err != nil {
		return nil, Counters{}, nil, deg, err
	}
	eng.ctx.beginRun(rc)
	// The session never passes through OptimizeCtx, so the run is flushed
	// to the metrics bundle here, whatever path exits the bucket loop.
	defer eng.ctx.flushMetrics()
	c := eng.ctx.Opts.TopC
	seen := map[string]bool{}
	var cands []plan.Node
	for i := 0; i < dm.Len() && !eng.ctx.stopped(); i++ {
		if err := eng.SetCoster(FixedParams{Mem: dm.Value(i)}); err != nil {
			return nil, eng.Stats(), eng.traceSnapshot(), deg, err
		}
		roots, err := eng.runTopCGuarded(c)
		if err != nil {
			if eng.ctx.stopped() {
				break
			}
			return nil, eng.Stats(), eng.traceSnapshot(), deg, fmt.Errorf("opt: algorithm B at m=%v: %w", dm.Value(i), err)
		}
		for _, r := range roots {
			if key := r.node.Key(); !seen[key] {
				seen[key] = true
				cands = append(cands, r.node)
			}
		}
	}
	if eng.ctx.stopped() {
		deg.note(eng.ctx.degradeReason(), RungPartial)
		if len(cands) == 0 {
			fb, ferr := eng.fallbackGuarded()
			if ferr != nil {
				return nil, eng.Stats(), eng.traceSnapshot(), deg, fmt.Errorf("%w (fallback also failed: %v)", causeOrBudget(eng.ctx.stopCause), ferr)
			}
			deg.rung = RungGreedy
			cands = append(cands, fb.Plan)
		}
		eng.ctx.Count.Degradations++
	} else if eng.ctx.sawNonFinite() {
		if len(cands) == 0 {
			return nil, eng.Stats(), eng.traceSnapshot(), deg, ErrNonFinite
		}
		deg.note(DegradeNonFinite, RungFull)
		eng.ctx.Count.Degradations++
	}
	return cands, eng.Stats(), eng.traceSnapshot(), deg, nil
}

// OptimizeWithAggregationCtx is OptimizeWithAggregation under a request
// context and budget. The two candidate-pool generations run on separate
// engine sessions (the bare core and the group-key-ordered core are
// different queries), so each gets its own budget meter; a degradation in
// either flags the aggregated Result.
func OptimizeWithAggregationCtx(rc context.Context, cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) (*Result, error) {
	if q.GroupBy == nil {
		return nil, fmt.Errorf("opt: query has no GROUP BY; use AlgorithmC")
	}
	if err := q.Validate(cat); err != nil {
		return nil, err
	}
	cands, counters, deg, err := aggregateCandidatesCtx(rc, cat, q, opts, dm)
	if err != nil {
		return nil, err
	}
	groups, pages, err := groupEstimates(cat, q)
	if err != nil {
		return nil, err
	}
	best, bestCost := pickBestAggregate(q, cands, dm, groups, pages)
	if best == nil {
		return nil, fmt.Errorf("opt: aggregation produced no plan")
	}
	res := &Result{Plan: best, Cost: bestCost, Count: counters}
	deg.apply(res)
	return res, nil
}

// aggregateCandidatesCtx unions the two pools with degradation accumulated
// across both sessions.
func aggregateCandidatesCtx(rc context.Context, cat *catalog.Catalog, q *query.SPJ, opts Options, dm *stats.Dist) ([]plan.Node, Counters, degradeInfo, error) {
	core := *q
	core.OrderBy = nil
	core.GroupBy = nil
	cands, counters, _, deg, err := algorithmBCandidatesCtx(rc, cat, &core, opts, dm)
	if err != nil {
		return nil, counters, deg, err
	}
	ordered := core
	ordered.OrderBy = q.GroupBy
	moreCands, moreCounters, _, moreDeg, err := algorithmBCandidatesCtx(rc, cat, &ordered, opts, dm)
	if err != nil {
		return nil, counters, deg, err
	}
	counters.Add(moreCounters)
	if moreDeg.degraded {
		deg.note(moreDeg.reason, moreDeg.rung)
	}
	seen := map[string]bool{}
	var out []plan.Node
	for _, c := range append(cands, moreCands...) {
		if key := c.Key(); !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	}
	return out, counters, deg, nil
}

// pickBestAggregate finishes every candidate with both aggregate methods and
// returns the least-expected-cost result.
func pickBestAggregate(q *query.SPJ, cands []plan.Node, dm *stats.Dist, groups, pages float64) (plan.Node, float64) {
	var best plan.Node
	bestCost := math.Inf(1)
	for _, cand := range cands {
		for _, m := range []plan.AggMethod{plan.HashAgg, plan.SortAgg} {
			finished := finishAggregate(q, cand, m, groups, pages)
			ec := plan.ExpCost(finished, dm)
			if ec < bestCost {
				best, bestCost = finished, ec
			}
		}
	}
	return best, bestCost
}
