//go:build !race

package opt

const raceEnabled = false
