package opt

import (
	"testing"

	"repro/internal/workload"
)

// TestRefinedNearOptimal: coarse-to-fine pruning with a reasonable margin
// stays within a few percent of the exact LEC cost and saves evaluations.
func TestRefinedNearOptimal(t *testing.T) {
	worst := 1.0
	savedSomewhere := false
	for seed := int64(0); seed < 10; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Chain, seed%2 == 0)
		fine, err := workload.LognormalMemDist(800, 1.0, 64)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := AlgorithmC(cat, q, Options{}, fine)
		if err != nil {
			t.Fatal(err)
		}
		refined, err := AlgorithmCRefined(cat, q, Options{}, fine, 4, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if refined.Cost < exact.Cost*(1-1e-9) {
			t.Errorf("seed %d: refined %v beats exact %v — impossible", seed, refined.Cost, exact.Cost)
		}
		if ratio := refined.Cost / exact.Cost; ratio > worst {
			worst = ratio
		}
		if refined.Count.CostEvals < exact.Count.CostEvals {
			savedSomewhere = true
		}
	}
	if worst > 1.05 {
		t.Errorf("refined plan up to %.3fx worse than exact — margin too aggressive", worst)
	}
	if !savedSomewhere {
		t.Error("refinement never saved evaluations")
	}
	t.Logf("worst refined/exact cost ratio: %.4f", worst)
}

// TestRefinedWithHugeMarginIsExact: with an enormous margin nothing is
// pruned, so the refined DP returns exactly the LEC plan.
func TestRefinedWithHugeMarginIsExact(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		cat, q := randInstance(t, seed, 4, workload.Star, seed%2 == 1)
		fine, err := workload.LognormalMemDist(700, 0.9, 32)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := AlgorithmC(cat, q, Options{}, fine)
		if err != nil {
			t.Fatal(err)
		}
		refined, err := AlgorithmCRefined(cat, q, Options{}, fine, 2, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(refined.Cost, exact.Cost) > costTol {
			t.Errorf("seed %d: huge-margin refined %v != exact %v", seed, refined.Cost, exact.Cost)
		}
	}
}

// TestRefinedDefaults: degenerate arguments fall back to sane defaults.
func TestRefinedDefaults(t *testing.T) {
	cat, q, dm := workload.Example11()
	res, err := AlgorithmCRefined(cat, q, Options{}, dm, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost <= 0 {
		t.Errorf("cost %v", res.Cost)
	}
	// The reported cost is the plan's true fine-grained expected cost.
	exact, err := AlgorithmC(cat, q, Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost < exact.Cost*(1-1e-9) {
		t.Error("refined reported below the optimum")
	}
}
