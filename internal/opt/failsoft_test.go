package opt

// Fail-soft behavior of the engine: budget exhaustion, deadline expiry,
// injected coster panics, and NaN/Inf cost poisoning must all degrade down
// the anytime ladder to a valid plan (or a typed error) — never a panic,
// never a garbage plan. The faults are driven by internal/faultinject.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// failsoftConfigs enumerates the strategy × space grid the fault matrix
// runs over. Each entry builds a fresh engine for the instance.
func failsoftConfigs(dm *stats.Dist) map[string]Config {
	chain := stats.MustNewChain(dm.Support(), [][]float64{
		{0.8, 0.2, 0}, {0.1, 0.8, 0.1}, {0, 0.2, 0.8},
	})
	return map[string]Config{
		"fixed/left-deep":   {Coster: FixedParams{Mem: dm.Mean()}},
		"static/left-deep":  {Coster: StaticParams{Mem: dm}},
		"static/bushy":      {Space: SpaceBushy, Coster: StaticParams{Mem: dm}},
		"phased/pipelined":  {Space: SpacePipelined, Coster: PhasedParams{Phases: []*stats.Dist{dm}}},
		"markov/left-deep":  {Coster: MarkovParams{Chain: chain, Initial: dm}},
		"multi/left-deep":   {Coster: MultiParams{Mem: dm}},
		"static/bushy-util": {Space: SpaceBushy, Coster: StaticParams{Mem: dm}, Objective: ExponentialUtility{Gamma: 1e-6}},
	}
}

// checkValidPlan asserts the result carries a finished plan covering every
// relation with a finite classical cost.
func checkValidPlan(t *testing.T, res *Result, q *query.SPJ, label string) {
	t.Helper()
	if res == nil || res.Plan == nil {
		t.Fatalf("%s: no plan returned", label)
	}
	if got := res.Plan.Rels().Len(); got != q.NumRels() {
		t.Fatalf("%s: plan covers %d of %d relations", label, got, q.NumRels())
	}
	if c := plan.Cost(res.Plan, 1000); math.IsNaN(c) || math.IsInf(c, 0) || c <= 0 {
		t.Fatalf("%s: plan cost %v is not finite positive", label, c)
	}
}

func TestBudgetExhaustionDegradesEveryConfig(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 7001, 5)
	for name, cfg := range failsoftConfigs(dm) {
		opts := Options{Budget: Budget{MaxCostEvals: 10}}
		eng, err := NewOptimizer(cat, q, opts, cfg)
		if err != nil {
			t.Fatalf("%s: NewOptimizer: %v", name, err)
		}
		res, err := eng.OptimizeCtx(context.Background())
		if err != nil {
			t.Fatalf("%s: OptimizeCtx: %v", name, err)
		}
		checkValidPlan(t, res, q, name)
		if !res.Degraded || res.Reason != DegradeBudget {
			t.Errorf("%s: degraded=%v reason=%v, want budget degradation", name, res.Degraded, res.Reason)
		}
		if res.Rung != RungPartial && res.Rung != RungGreedy {
			t.Errorf("%s: rung %q", name, res.Rung)
		}
		if res.Count.Degradations == 0 {
			t.Errorf("%s: Degradations counter not incremented", name)
		}
	}
}

func TestSubsetBudgetTrips(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 7002, 6)
	eng, err := NewOptimizer(cat, q, Options{Budget: Budget{MaxSubsets: 3}}, Config{Coster: StaticParams{Mem: dm}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.OptimizeCtx(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	checkValidPlan(t, res, q, "subset budget")
	if !res.Degraded || res.Reason != DegradeBudget {
		t.Errorf("degraded=%v reason=%v, want budget", res.Degraded, res.Reason)
	}
}

func TestCancelledContextDegradesEveryConfig(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 7003, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired when the search starts
	for name, cfg := range failsoftConfigs(dm) {
		eng, err := NewOptimizer(cat, q, Options{}, cfg)
		if err != nil {
			t.Fatalf("%s: NewOptimizer: %v", name, err)
		}
		res, err := eng.OptimizeCtx(ctx)
		if err != nil {
			t.Fatalf("%s: OptimizeCtx: %v", name, err)
		}
		checkValidPlan(t, res, q, name)
		if !res.Degraded || res.Reason != DegradeDeadline {
			t.Errorf("%s: degraded=%v reason=%v, want deadline", name, res.Degraded, res.Reason)
		}
	}
}

func TestInjectedPanicDegradesEveryConfig(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 7004, 5)
	for name, cfg := range failsoftConfigs(dm) {
		faultinject.Enable(faultinject.New(1, faultinject.Rule{
			Site: faultinject.JoinCost, Kind: faultinject.KindPanic, After: 3,
		}))
		eng, err := NewOptimizer(cat, q, Options{}, cfg)
		if err != nil {
			faultinject.Disable()
			t.Fatalf("%s: NewOptimizer: %v", name, err)
		}
		res, err := eng.OptimizeCtx(context.Background())
		faultinject.Disable()
		if err != nil {
			t.Fatalf("%s: OptimizeCtx: %v", name, err)
		}
		checkValidPlan(t, res, q, name)
		if !res.Degraded || res.Reason != DegradePanic {
			t.Errorf("%s: degraded=%v reason=%v, want panic", name, res.Degraded, res.Reason)
		}
		if res.Count.PanicsRecovered == 0 {
			t.Errorf("%s: PanicsRecovered counter not incremented", name)
		}
	}
}

func TestNaNCostIsGuardedNotPropagated(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 7005, 5)
	for name, cfg := range failsoftConfigs(dm) {
		faultinject.Enable(faultinject.New(1, faultinject.Rule{
			Site: faultinject.JoinCost, Kind: faultinject.KindNaN, After: 2,
		}))
		eng, err := NewOptimizer(cat, q, Options{}, cfg)
		if err != nil {
			faultinject.Disable()
			t.Fatalf("%s: NewOptimizer: %v", name, err)
		}
		res, err := eng.OptimizeCtx(context.Background())
		faultinject.Disable()
		if err != nil {
			t.Fatalf("%s: OptimizeCtx: %v", name, err)
		}
		checkValidPlan(t, res, q, name)
		if res.Count.NonFiniteCosts == 0 {
			t.Errorf("%s: NonFiniteCosts counter not incremented", name)
		}
		if !res.Degraded || res.Reason != DegradeNonFinite {
			t.Errorf("%s: degraded=%v reason=%v, want non-finite flag", name, res.Degraded, res.Reason)
		}
		if math.IsNaN(res.Cost) {
			t.Errorf("%s: NaN objective escaped: %v", name, res.Cost)
		}
	}
}

func TestAllCostsPoisonedIsTypedError(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 7006, 4)
	faultinject.Enable(faultinject.New(1,
		faultinject.Rule{Site: faultinject.JoinCost, Kind: faultinject.KindNaN, After: 1, Every: 1},
		faultinject.Rule{Site: faultinject.SortCost, Kind: faultinject.KindInf, After: 1, Every: 1},
	))
	defer faultinject.Disable()
	eng, err := NewOptimizer(cat, q, Options{}, Config{Coster: StaticParams{Mem: dm}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.OptimizeCtx(context.Background())
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
}

func TestForcedCancellationAtNthEval(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 7007, 5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := faultinject.New(1, faultinject.Rule{
		Site: faultinject.JoinCost, Kind: faultinject.KindCancel, After: 20,
	})
	in.OnCancel(cancel)
	faultinject.Enable(in)
	defer faultinject.Disable()
	eng, err := NewOptimizer(cat, q, Options{}, Config{Coster: StaticParams{Mem: dm}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.OptimizeCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	checkValidPlan(t, res, q, "forced cancel")
	if !res.Degraded || res.Reason != DegradeDeadline {
		t.Errorf("degraded=%v reason=%v, want deadline", res.Degraded, res.Reason)
	}
}

func TestSlowCosterHitsDeadline(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 7008, 5)
	faultinject.Enable(faultinject.New(1, faultinject.Rule{
		Site: faultinject.JoinCost, Kind: faultinject.KindStall, After: 1, Every: 1, Sleep: 2 * time.Millisecond,
	}))
	defer faultinject.Disable()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	eng, err := NewOptimizer(cat, q, Options{}, Config{Coster: StaticParams{Mem: dm}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.OptimizeCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	checkValidPlan(t, res, q, "slow coster")
	if !res.Degraded || res.Reason != DegradeDeadline {
		t.Errorf("degraded=%v reason=%v, want deadline", res.Degraded, res.Reason)
	}
}

// TestAlgorithmsABDegradeUnderBudget drives the shared-session bucket loops.
func TestAlgorithmsABDegradeUnderBudget(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 7009, 5)
	opts := Options{Budget: Budget{MaxCostEvals: 10}}
	for name, f := range map[string]func() (*Result, error){
		"A": func() (*Result, error) { return AlgorithmACtx(context.Background(), cat, q, opts, dm) },
		"B": func() (*Result, error) { return AlgorithmBCtx(context.Background(), cat, q, opts, dm) },
	} {
		res, err := f()
		if err != nil {
			t.Fatalf("algorithm %s: %v", name, err)
		}
		checkValidPlan(t, res, q, name)
		if !res.Degraded || res.Reason != DegradeBudget {
			t.Errorf("algorithm %s: degraded=%v reason=%v, want budget", name, res.Degraded, res.Reason)
		}
	}
}

// TestAlgorithmsABDegradeUnderPanic: a panicking coster inside the bucket
// loops must still yield a candidate.
func TestAlgorithmsABDegradeUnderPanic(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 7010, 5)
	for name, f := range map[string]func() (*Result, error){
		"A": func() (*Result, error) { return AlgorithmACtx(context.Background(), cat, q, Options{}, dm) },
		"B": func() (*Result, error) { return AlgorithmBCtx(context.Background(), cat, q, Options{}, dm) },
	} {
		faultinject.Enable(faultinject.New(1, faultinject.Rule{
			Site: faultinject.JoinCost, Kind: faultinject.KindPanic, After: 5,
		}))
		res, err := f()
		faultinject.Disable()
		if err != nil {
			t.Fatalf("algorithm %s: %v", name, err)
		}
		checkValidPlan(t, res, q, name)
		if !res.Degraded || res.Reason != DegradePanic {
			t.Errorf("algorithm %s: degraded=%v reason=%v, want panic", name, res.Degraded, res.Reason)
		}
	}
}

// TestAggregationDegradesUnderBudget covers the GROUP BY path.
func TestAggregationDegradesUnderBudget(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 7011, 4)
	gb := query.ColumnRef{Table: q.Tables[0], Column: cat.MustTable(q.Tables[0]).Columns[0].Name}
	qq := *q
	qq.GroupBy = &gb
	qq.OrderBy = nil
	res, err := OptimizeWithAggregationCtx(context.Background(), cat, &qq,
		Options{Budget: Budget{MaxCostEvals: 10}}, dm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("no plan")
	}
	if !res.Degraded || res.Reason != DegradeBudget {
		t.Errorf("degraded=%v reason=%v, want budget", res.Degraded, res.Reason)
	}
}

// TestUnbudgetedRunsIdentical: with no budget and a background context, the
// fail-soft machinery must be invisible — same plan, same objective, same
// work counters as the plain entry points, and never a Degraded flag.
func TestUnbudgetedRunsIdentical(t *testing.T) {
	for seed := int64(7100); seed < 7106; seed++ {
		cat, q, dm := engineTestInstance(t, seed, 5)
		plain, err := AlgorithmC(cat, q, Options{}, dm)
		if err != nil {
			t.Fatal(err)
		}
		ctxed, err := AlgorithmCCtx(context.Background(), cat, q, Options{}, dm)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Degraded || ctxed.Degraded {
			t.Fatalf("seed %d: unbudgeted run degraded", seed)
		}
		if plain.Plan.Key() != ctxed.Plan.Key() || plain.Cost != ctxed.Cost {
			t.Errorf("seed %d: plan/cost diverge: %s %v vs %s %v",
				seed, plain.Plan.Key(), plain.Cost, ctxed.Plan.Key(), ctxed.Cost)
		}
		if plain.Count.CostEvals != ctxed.Count.CostEvals || plain.Count.Subsets != ctxed.Count.Subsets {
			t.Errorf("seed %d: counters diverge: %+v vs %+v", seed, plain.Count, ctxed.Count)
		}
	}
}

// TestGenerousBudgetNeverDegrades: a budget larger than the search's actual
// work must not perturb anything.
func TestGenerousBudgetNeverDegrades(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 7200, 5)
	free, err := AlgorithmC(cat, q, Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := AlgorithmCCtx(context.Background(), cat, q,
		Options{Budget: Budget{MaxCostEvals: free.Count.CostEvals * 10}}, dm)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Degraded {
		t.Fatal("generous budget degraded the run")
	}
	if free.Plan.Key() != capped.Plan.Key() {
		t.Errorf("plans diverge: %s vs %s", free.Plan.Key(), capped.Plan.Key())
	}
}

// TestBudgetMonotoneQuality: raising the budget must never worsen the
// returned plan's true expected cost on these instances — the anytime
// ladder's value proposition (experiment E19 reports the full curve).
func TestBudgetLadderReachesOptimum(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 7201, 5)
	full, err := AlgorithmC(cat, q, Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, b := range []int{5, 50, 500, 0} {
		res, err := AlgorithmCCtx(context.Background(), cat, q, Options{Budget: Budget{MaxCostEvals: b}}, dm)
		if err != nil {
			t.Fatalf("budget %d: %v", b, err)
		}
		checkValidPlan(t, res, q, "budget ladder")
		ec := plan.ExpCost(res.Plan, dm)
		// Not strictly monotone in general, but the unlimited run must match
		// the optimum and every rung must be within a sane factor of it.
		if b == 0 {
			if res.Degraded {
				t.Error("unlimited budget degraded")
			}
			if ec > full.Cost*(1+1e-9) {
				t.Errorf("unlimited budget ec %v > optimum %v", ec, full.Cost)
			}
		}
		if ec > prev*100 {
			t.Errorf("budget %d: quality collapsed: %v after %v", b, ec, prev)
		}
		prev = ec
	}
}

// TestGreedyFallbackDirect exercises the terminal rung in isolation: with a
// 1-eval budget nothing completes, so the greedy plan is the answer.
func TestGreedyFallbackDirect(t *testing.T) {
	cat, q, dm := engineTestInstance(t, 7202, 6)
	res, err := AlgorithmCCtx(context.Background(), cat, q, Options{Budget: Budget{MaxCostEvals: 1}}, dm)
	if err != nil {
		t.Fatal(err)
	}
	checkValidPlan(t, res, q, "greedy")
	if !res.Degraded {
		t.Error("1-eval budget did not degrade")
	}
}

// TestSingleRelationFailsoft: the n=1 corner under faults.
func TestSingleRelationFailsoft(t *testing.T) {
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{Name: "t", Rows: 1000, Pages: 100,
		Columns: []*catalog.Column{{Name: "k", Distinct: 1000, Min: 1, Max: 1000}}})
	q := &query.SPJ{Tables: []string{"t"}, OrderBy: &query.ColumnRef{Table: "t", Column: "k"}}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	dm := stats.MustNew([]float64{10, 100}, []float64{0.5, 0.5})
	res, err := AlgorithmCCtx(context.Background(), cat, q, Options{Budget: Budget{MaxCostEvals: 1}}, dm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("no plan for single relation")
	}
}
