package faultinject

import (
	"sync"
	"testing"
	"time"
)

func TestRuleSchedule(t *testing.T) {
	cases := []struct {
		rule Rule
		hits []int // hits at which the rule should fire
		max  int
	}{
		{Rule{After: 3}, []int{3}, 10},
		{Rule{}, []int{1}, 5},
		{Rule{After: 2, Every: 3}, []int{2, 5, 8}, 9},
		{Rule{After: 1, Every: 1}, []int{1, 2, 3, 4}, 4},
	}
	for i, c := range cases {
		var got []int
		for h := 1; h <= c.max; h++ {
			if c.rule.due(h) {
				got = append(got, h)
			}
		}
		if len(got) != len(c.hits) {
			t.Fatalf("case %d: fired at %v, want %v", i, got, c.hits)
		}
		for j := range got {
			if got[j] != c.hits[j] {
				t.Fatalf("case %d: fired at %v, want %v", i, got, c.hits)
			}
		}
	}
}

func TestCheckDisabledIsNoop(t *testing.T) {
	Disable()
	if k := Check(JoinCost); k != KindNone {
		t.Fatalf("disabled Check returned %v", k)
	}
}

func TestInjectedPanicAtNthHit(t *testing.T) {
	Enable(New(1, Rule{Site: JoinCost, Kind: KindPanic, After: 3}))
	defer Disable()
	for i := 0; i < 2; i++ {
		if k := Check(JoinCost); k != KindNone {
			t.Fatalf("hit %d fired %v early", i+1, k)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("third hit did not panic")
		}
	}()
	Check(JoinCost)
}

func TestValueFaultsAndCounters(t *testing.T) {
	in := New(1,
		Rule{Site: JoinCost, Kind: KindNaN, After: 2},
		Rule{Site: SortCost, Kind: KindInf, After: 1, Every: 1})
	Enable(in)
	defer Disable()
	if k := Check(JoinCost); k != KindNone {
		t.Fatalf("join hit 1: %v", k)
	}
	if k := Check(JoinCost); k != KindNaN {
		t.Fatalf("join hit 2: %v, want nan", k)
	}
	if k := Check(JoinCost); k != KindNone {
		t.Fatalf("join hit 3: %v (rule is fire-once)", k)
	}
	for i := 0; i < 3; i++ {
		if k := Check(SortCost); k != KindInf {
			t.Fatalf("sort hit %d: %v, want inf", i+1, k)
		}
	}
	if in.Hits(JoinCost) != 3 || in.Fires(JoinCost) != 1 {
		t.Fatalf("join counters: hits=%d fires=%d", in.Hits(JoinCost), in.Fires(JoinCost))
	}
	if in.Hits(SortCost) != 3 || in.Fires(SortCost) != 3 {
		t.Fatalf("sort counters: hits=%d fires=%d", in.Hits(SortCost), in.Fires(SortCost))
	}
}

func TestCancelHookAndStall(t *testing.T) {
	cancelled := false
	in := New(1,
		Rule{Site: JoinCost, Kind: KindCancel, After: 1},
		Rule{Site: SortCost, Kind: KindStall, After: 1, Sleep: time.Millisecond})
	in.OnCancel(func() { cancelled = true })
	Enable(in)
	defer Disable()
	if k := Check(JoinCost); k != KindNone {
		t.Fatalf("cancel returned %v (side effect only)", k)
	}
	if !cancelled {
		t.Fatal("cancel hook not invoked")
	}
	start := time.Now()
	if k := Check(SortCost); k != KindNone {
		t.Fatalf("stall returned %v", k)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("stall did not sleep")
	}
}

func TestProbabilityGateDeterministic(t *testing.T) {
	// The same seed must reproduce the same firing schedule.
	run := func() []int {
		in := New(42, Rule{Site: JoinCost, Kind: KindNaN, After: 1, Every: 1, P: 0.5})
		Enable(in)
		defer Disable()
		var fired []int
		for h := 1; h <= 50; h++ {
			if Check(JoinCost) != KindNone {
				fired = append(fired, h)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 50 {
		t.Fatalf("p=0.5 gate fired %d/50 times", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a, b)
		}
	}
}

func TestHoldParksUntilRelease(t *testing.T) {
	in := New(1, Rule{Site: ServeOptimize, Kind: KindHold, After: 1, Every: 1})
	Enable(in)
	defer Disable()
	const workers = 4
	var done sync.WaitGroup
	done.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer done.Done()
			Check(ServeOptimize)
		}()
	}
	// All workers must park on the hold.
	deadline := time.Now().Add(5 * time.Second)
	for in.Holding(ServeOptimize) != workers {
		if time.Now().After(deadline) {
			t.Fatalf("holding = %d, want %d", in.Holding(ServeOptimize), workers)
		}
		time.Sleep(time.Millisecond)
	}
	in.Release()
	done.Wait()
	if got := in.Holding(ServeOptimize); got != 0 {
		t.Errorf("holding after release = %d, want 0", got)
	}
	// Release disarms the hold: later hits pass straight through.
	if k := Check(ServeOptimize); k != KindNone {
		t.Errorf("post-release Check = %v, want none", k)
	}
	in.Release() // idempotent
	if got, want := in.Hits(ServeOptimize), workers+1; got != want {
		t.Errorf("hits = %d, want %d", got, want)
	}
}

func TestKindStringCoverage(t *testing.T) {
	cases := []struct {
		kind Kind
		want string
	}{
		{KindNone, "none"},
		{KindPanic, "panic"},
		{KindNaN, "nan"},
		{KindInf, "inf"},
		{KindCancel, "cancel"},
		{KindStall, "stall"},
		{KindHold, "hold"},
		{KindDrop, "drop"},
		{KindFlap, "flap"},
		{Kind(99), "Kind(99)"},
	}
	for _, c := range cases {
		if got := c.kind.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(c.kind), got, c.want)
		}
	}
}

// TestFleetSiteKinds drives each fleet site through the kinds its callers
// handle, alongside the existing serve/opt kinds: KindDrop is a value fault
// (returned, nothing unwinds), stalls sleep in place, and each site's rules
// stay isolated from its siblings.
func TestFleetSiteKinds(t *testing.T) {
	cases := []struct {
		site Site
		kind Kind
	}{
		{FleetPeerLookup, KindDrop},
		{FleetPeerLookup, KindNone},
		{FleetPropagate, KindDrop},
		{FleetSnapshot, KindDrop},
		{FleetMembership, KindDrop},
		{FleetHandoff, KindDrop},
	}
	for _, c := range cases {
		t.Run(string(c.site)+"/"+c.kind.String(), func(t *testing.T) {
			rules := []Rule{}
			if c.kind != KindNone {
				rules = append(rules, Rule{Site: c.site, Kind: c.kind, After: 1, Every: 1})
			}
			in := New(1, rules...)
			Enable(in)
			defer Disable()
			if got := Check(c.site); got != c.kind {
				t.Fatalf("Check(%s) = %v, want %v", c.site, got, c.kind)
			}
			// Sibling fleet sites must not fire on this site's rules.
			for _, other := range []Site{FleetPeerLookup, FleetPropagate, FleetSnapshot, FleetMembership, FleetHandoff} {
				if other == c.site {
					continue
				}
				if got := Check(other); got != KindNone {
					t.Errorf("rule on %s fired at %s: %v", c.site, other, got)
				}
			}
		})
	}
}

func TestDropDoesNotUnwind(t *testing.T) {
	in := New(1, Rule{Site: FleetPeerLookup, Kind: KindDrop, After: 2})
	Enable(in)
	defer Disable()
	if k := Check(FleetPeerLookup); k != KindNone {
		t.Fatalf("hit 1: %v, want none", k)
	}
	if k := Check(FleetPeerLookup); k != KindDrop {
		t.Fatalf("hit 2: %v, want drop", k)
	}
	if k := Check(FleetPeerLookup); k != KindNone {
		t.Fatalf("hit 3: %v (rule is fire-once)", k)
	}
	if in.Fires(FleetPeerLookup) != 1 {
		t.Errorf("fires = %d, want 1", in.Fires(FleetPeerLookup))
	}
}

// TestFlapSchedule pins the alternating phases of KindFlap: starting at
// After, the site drops for Every hits, passes for Every, and repeats —
// and the failing phase surfaces as KindDrop so call sites need no
// flap-specific handling.
func TestFlapSchedule(t *testing.T) {
	in := New(1, Rule{Site: FleetPeerLookup, Kind: KindFlap, After: 2, Every: 3})
	Enable(in)
	defer Disable()
	want := []Kind{
		KindNone,                     // hit 1: before After
		KindDrop, KindDrop, KindDrop, // hits 2-4: failing phase
		KindNone, KindNone, KindNone, // hits 5-7: healthy phase
		KindDrop, KindDrop, KindDrop, // hits 8-10: failing again
		KindNone, // hit 11
	}
	for i, w := range want {
		if got := Check(FleetPeerLookup); got != w {
			t.Fatalf("hit %d: %v, want %v", i+1, got, w)
		}
	}
}

func TestFlapDefaultPeriodIsOne(t *testing.T) {
	in := New(1, Rule{Site: FleetPeerLookup, Kind: KindFlap})
	Enable(in)
	defer Disable()
	for i := 1; i <= 6; i++ {
		want := KindDrop
		if i%2 == 0 {
			want = KindNone
		}
		if got := Check(FleetPeerLookup); got != want {
			t.Fatalf("hit %d: %v, want %v", i, got, want)
		}
	}
}

func TestServeSitesAreDistinct(t *testing.T) {
	in := New(1, Rule{Site: ServeAdmit, Kind: KindNaN, After: 1})
	Enable(in)
	defer Disable()
	if k := Check(ServeOptimize); k != KindNone {
		t.Errorf("rule on %s fired at %s: %v", ServeAdmit, ServeOptimize, k)
	}
	if k := Check(ServeAdmit); k != KindNaN {
		t.Errorf("Check(ServeAdmit) = %v, want nan", k)
	}
}
