// Package faultinject is a deterministic, seedable fault-injection harness
// for the optimizer's fail-soft machinery. Production code is instrumented
// with named sites (a cost-formula evaluation, a sort-cost evaluation); a
// test enables an Injector with rules that fire at the Nth hit of a site —
// panicking like a broken coster, substituting NaN/Inf costs, cancelling
// the request context, or stalling like a coster stuck on I/O.
//
// The package is built so the instrumented hot paths pay one atomic load
// when injection is disabled (the common case, including all production
// use): Active returns nil and the caller skips everything else.
//
// Determinism: rules fire on exact hit counts (After/Every), and the only
// randomness — the optional probability gate P — draws from an RNG seeded
// at injector construction, so a failing schedule is reproducible from
// (seed, rules) alone.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one instrumented point in production code.
type Site string

// Instrumented sites.
const (
	// JoinCost fires once per join-step cost pricing in the search engine.
	JoinCost Site = "opt/join-cost"
	// SortCost fires once per sort-step cost pricing in the search engine.
	SortCost Site = "opt/sort-cost"
	// ServeAdmit fires once per request entering the serving layer's
	// admission controller, before any queueing decision. A stall here
	// injects admission latency; a hold parks arrivals for burst tests.
	ServeAdmit Site = "serve/admit"
	// ServeOptimize fires once per optimization attempt executed by a
	// serving-layer worker, after admission and before the engine runs. A
	// stall or hold here simulates a slow optimizer (queue buildup, the
	// overload path); a panic simulates a coster configuration that blows
	// up the worker (the circuit-breaker path).
	ServeOptimize Site = "serve/optimize"
	// FleetPeerLookup fires once per peer plan-cache lookup issued by the
	// fleet layer, before the transport sends it. A drop simulates a
	// network partition toward that peer, a stall a slow peer, a panic a
	// peer (or transport) blowing up mid-call — each must leave the
	// requester on its single-node fallback path.
	FleetPeerLookup Site = "fleet/peer-lookup"
	// FleetPropagate fires once per peer per catalog-generation
	// propagation. A drop leaves that peer on a stale generation, which
	// the lookup protocol must then detect and reject/refresh.
	FleetPropagate Site = "fleet/propagate"
	// FleetSnapshot fires once per plan-cache snapshot save or load. A
	// drop simulates a failed disk write/read; the daemon must cold-start
	// (or exit its drain) cleanly, never crash.
	FleetSnapshot Site = "fleet/snapshot"
	// FleetMembership fires once per outgoing membership exchange (join
	// and leave announcements, epoch syncs). A drop simulates a lost
	// announcement: the peer stays on an older membership epoch until the
	// lookup piggyback repairs it.
	FleetMembership Site = "fleet/membership"
	// FleetHandoff fires once per outgoing warm-handoff batch (rebalance
	// transfers after a membership change, and asynchronous replica
	// pushes). A drop loses only warmth, never correctness: the receiver
	// serves its first request cold and re-optimizes.
	FleetHandoff Site = "fleet/handoff"
	// TierGreedy fires once per tier-zero greedy planning attempt, before
	// any planning work. A panic, NaN or Inf here simulates a broken greedy
	// planner; the tier controller must fall through to the DP path with a
	// typed escalation reason, never crash or serve a corrupted plan.
	TierGreedy Site = "tier/greedy"
)

// Kind is the failure a rule injects at its site.
type Kind int

// Failure kinds.
const (
	// KindNone is the zero Kind: no fault.
	KindNone Kind = iota
	// KindPanic panics at the site, simulating a coster invariant failure.
	KindPanic
	// KindNaN makes the site report a NaN cost.
	KindNaN
	// KindInf makes the site report a +Inf cost.
	KindInf
	// KindCancel invokes the injector's OnCancel hook (tests arm it with a
	// context.CancelFunc), forcing cancellation at an exact evaluation count.
	KindCancel
	// KindStall sleeps for the rule's Sleep duration, simulating a coster
	// stuck on a slow catalog or statistics source.
	KindStall
	// KindHold blocks at the site until the injector's Release is called —
	// the burst-load primitive. A test parks every worker on a hold,
	// piles up a deterministic queue behind them, asserts the overload
	// behavior, then releases the whole burst at once. After Release the
	// rule is a no-op, so released workers re-hitting the site pass
	// straight through.
	KindHold
	// KindDrop makes the site report that the network (or disk) dropped
	// the operation — the partition primitive. Check returns it to the
	// caller, which translates it into its own transport error; unlike
	// KindPanic nothing unwinds, the operation just fails the way a
	// severed link fails.
	KindDrop
	// KindFlap alternates the site between failing and healthy phases —
	// the flapping-peer primitive for failure-detector hysteresis tests.
	// Starting at the rule's After-th hit, the site drops for Every
	// consecutive hits, passes for the next Every, and so on (Every ≤ 0
	// means phases of length 1). During a failing phase Check returns
	// KindDrop, so instrumented call sites need no flap-specific handling.
	KindFlap
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindPanic:
		return "panic"
	case KindNaN:
		return "nan"
	case KindInf:
		return "inf"
	case KindCancel:
		return "cancel"
	case KindStall:
		return "stall"
	case KindHold:
		return "hold"
	case KindDrop:
		return "drop"
	case KindFlap:
		return "flap"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Rule schedules one fault at one site.
type Rule struct {
	// Site the rule instruments.
	Site Site
	// Kind of fault to inject.
	Kind Kind
	// After is the 1-based hit count at which the rule first fires
	// (0 means the first hit).
	After int
	// Every, when ≥ 1, re-fires the rule on every Every-th hit after the
	// first firing; 0 fires exactly once.
	Every int
	// Sleep is the stall duration for KindStall rules.
	Sleep time.Duration
	// P, when in (0, 1), gates each firing on a draw from the injector's
	// seeded RNG; 0 or ≥ 1 means the rule always fires when scheduled.
	P float64
}

func (r Rule) first() int {
	if r.After <= 0 {
		return 1
	}
	return r.After
}

// due reports whether the rule is scheduled for the hit-th hit of its site.
func (r Rule) due(hit int) bool {
	f := r.first()
	if hit < f {
		return false
	}
	if r.Kind == KindFlap {
		period := r.Every
		if period < 1 {
			period = 1
		}
		// Phases alternate failing/healthy, failing first.
		return ((hit-f)/period)%2 == 0
	}
	if hit == f {
		return true
	}
	return r.Every >= 1 && (hit-f)%r.Every == 0
}

// Injector evaluates a rule set deterministically.
type Injector struct {
	mu       sync.Mutex
	rules    []Rule
	hits     map[Site]int
	fires    map[Site]int
	rng      *rand.Rand
	cancel   func()
	hold     chan struct{}
	holding  map[Site]int
	released sync.Once
}

// New builds an injector for the given rules; seed drives the optional
// probability gates.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{
		rules:   rules,
		hits:    make(map[Site]int),
		fires:   make(map[Site]int),
		rng:     rand.New(rand.NewSource(seed)),
		hold:    make(chan struct{}),
		holding: make(map[Site]int),
	}
}

// Release unblocks every goroutine parked on a KindHold rule and disarms
// all holds from then on. Safe to call more than once and from any
// goroutine; tests that arm KindHold rules must call it (typically via
// t.Cleanup) or held workers leak.
func (in *Injector) Release() {
	in.released.Do(func() { close(in.hold) })
}

// Holding reports how many KindHold firings are currently parked: total
// hold fires at the site minus releases. Once Release has run it reports 0.
func (in *Injector) Holding(s Site) int {
	select {
	case <-in.hold:
		return 0
	default:
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.holding[s]
}

// OnCancel arms the hook KindCancel rules invoke — typically a
// context.CancelFunc for the request under test.
func (in *Injector) OnCancel(f func()) { in.cancel = f }

// Hits returns how many times the site has been evaluated.
func (in *Injector) Hits(s Site) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[s]
}

// Fires returns how many faults the site has injected.
func (in *Injector) Fires(s Site) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fires[s]
}

// check records one hit of the site and returns the rule that fires, if any.
func (in *Injector) check(s Site) (Rule, bool) {
	in.mu.Lock()
	in.hits[s]++
	hit := in.hits[s]
	for _, r := range in.rules {
		if r.Site != s || !r.due(hit) {
			continue
		}
		if r.P > 0 && r.P < 1 && in.rng.Float64() >= r.P {
			continue
		}
		in.fires[s]++
		in.mu.Unlock()
		return r, true
	}
	in.mu.Unlock()
	return Rule{}, false
}

// active holds the enabled injector; nil means injection is off.
var active atomic.Pointer[Injector]

// Enable installs the injector globally. Tests must pair it with Disable
// (typically via t.Cleanup) and must not run in parallel with other
// injection tests.
func Enable(in *Injector) { active.Store(in) }

// Disable removes any installed injector.
func Disable() { active.Store(nil) }

// Active returns the enabled injector, or nil. Instrumented code calls this
// first and skips all other work when injection is off.
func Active() *Injector { return active.Load() }

// Check records a hit of the site on the active injector and executes any
// side-effecting fault it schedules: KindPanic panics, KindStall sleeps,
// KindCancel invokes the OnCancel hook. Value faults (KindNaN, KindInf,
// KindDrop) are returned to the caller, which substitutes the corrupted
// cost — or fails the dropped network operation — itself.
// With no active injector it returns KindNone immediately.
func Check(s Site) Kind {
	in := Active()
	if in == nil {
		return KindNone
	}
	r, ok := in.check(s)
	if !ok {
		return KindNone
	}
	switch r.Kind {
	case KindPanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s (hit %d)", s, in.Hits(s)))
	case KindStall:
		time.Sleep(r.Sleep)
		return KindNone
	case KindCancel:
		if in.cancel != nil {
			in.cancel()
		}
		return KindNone
	case KindHold:
		in.mu.Lock()
		in.holding[s]++
		in.mu.Unlock()
		<-in.hold
		in.mu.Lock()
		in.holding[s]--
		in.mu.Unlock()
		return KindNone
	case KindFlap:
		// A flap in its failing phase looks like a severed link.
		return KindDrop
	}
	return r.Kind
}
