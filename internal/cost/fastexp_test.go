package cost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func randSizeDist(rng *rand.Rand, maxBuckets int) *stats.Dist {
	n := rng.Intn(maxBuckets) + 1
	vals := make([]float64, n)
	weights := make([]float64, n)
	for i := range vals {
		vals[i] = math.Floor(rng.Float64()*1e6) + 1
		weights[i] = rng.Float64() + 0.01
	}
	return stats.MustNew(vals, weights)
}

func randMemDist(rng *rand.Rand, maxBuckets int) *stats.Dist {
	n := rng.Intn(maxBuckets) + 1
	vals := make([]float64, n)
	weights := make([]float64, n)
	for i := range vals {
		vals[i] = math.Floor(rng.Float64()*5000) + 1
		weights[i] = rng.Float64() + 0.01
	}
	return stats.MustNew(vals, weights)
}

func TestExpJoinCostMemMatchesDirect(t *testing.T) {
	dm := stats.MustNew([]float64{700, 2000}, []float64{0.2, 0.8})
	const a, b = 1_000_000, 400_000
	want := 0.2*JoinCost(SortMerge, a, b, 700) + 0.8*JoinCost(SortMerge, a, b, 2000)
	if got := ExpJoinCostMem(SortMerge, a, b, dm); math.Abs(got-want) > 1e-6 {
		t.Errorf("ExpJoinCostMem = %v, want %v", got, want)
	}
}

// TestFastMatchesNaive is the core correctness property of §3.6.1–3.6.2:
// the linear-time routines compute exactly the same expectation as the
// naive triple loop, for every join method.
func TestFastMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		da := randSizeDist(rng, 10)
		db := randSizeDist(rng, 10)
		dm := randMemDist(rng, 10)
		for _, m := range Methods() {
			fast := ExpJoinCost3(m, da, db, dm)
			naive := ExpJoinCost3Naive(m, da, db, dm)
			if math.Abs(fast-naive) > 1e-6*(1+math.Abs(naive)) {
				t.Logf("seed %d method %v: fast %v naive %v", seed, m, fast, naive)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFastTieHeavy stresses the A = B tie case, where the 1{A≤B} / 1{A>B}
// split must partition the probability mass exactly once.
func TestFastTieHeavy(t *testing.T) {
	// Identical supports with heavy overlap.
	d := stats.MustNew([]float64{100, 100_000, 1_000_000}, []float64{0.3, 0.4, 0.3})
	dm := stats.MustNew([]float64{10, 500, 1500}, []float64{0.2, 0.5, 0.3})
	for _, m := range Methods() {
		fast := ExpJoinCost3(m, d, d, dm)
		naive := ExpJoinCost3Naive(m, d, d, dm)
		if math.Abs(fast-naive) > 1e-6*(1+naive) {
			t.Errorf("%v: fast %v, naive %v", m, fast, naive)
		}
	}
}

func TestFastWithPointDistributions(t *testing.T) {
	// When all three distributions are points, E[Φ] = Φ.
	da, db, dm := stats.Point(1000), stats.Point(500), stats.Point(40)
	for _, m := range Methods() {
		want := JoinCost(m, 1000, 500, 40)
		if got := ExpJoinCost3(m, da, db, dm); math.Abs(got-want) > 1e-9 {
			t.Errorf("%v: %v, want %v", m, got, want)
		}
	}
}

func TestFastClampsMemory(t *testing.T) {
	// Memory support below 1 page must behave as 1, matching JoinCost.
	da, db := stats.Point(100), stats.Point(50)
	dm := stats.MustNew([]float64{0.5, 10}, []float64{0.5, 0.5})
	for _, m := range Methods() {
		want := 0.5*JoinCost(m, 100, 50, 1) + 0.5*JoinCost(m, 100, 50, 10)
		if got := ExpJoinCost3(m, da, db, dm); math.Abs(got-want) > 1e-9 {
			t.Errorf("%v: %v, want %v", m, got, want)
		}
	}
}

// TestExample11ExpectedCosts verifies the full Example 1.1 computation:
// under the 80%/20% memory distribution, Plan 2 (Grace hash + sort) has
// lower expected cost than Plan 1 (sort-merge), even though Plan 1 wins at
// both the mean (1740) and the mode (2000).
func TestExample11ExpectedCosts(t *testing.T) {
	const a, b, result = 1_000_000, 400_000, 3000
	dm := stats.MustNew([]float64{700, 2000}, []float64{0.2, 0.8})

	plan1 := ExpJoinCostMem(SortMerge, a, b, dm)
	plan2 := ExpJoinCostMem(GraceHash, a, b, dm) +
		dm.Expect(func(mem float64) float64 { return SortCost(result, mem) })

	if plan2 >= plan1 {
		t.Errorf("E[plan2] = %v not below E[plan1] = %v", plan2, plan1)
	}
	// At the modal and mean memory values the LSC choice is Plan 1.
	for _, mem := range []float64{2000, 1740} {
		p1 := JoinCost(SortMerge, a, b, mem)
		p2 := JoinCost(GraceHash, a, b, mem) + SortCost(result, mem)
		if p1 >= p2 {
			t.Errorf("at mem=%v: plan1 %v not below plan2 %v (LSC should pick plan 1)", mem, p1, p2)
		}
	}
}

func BenchmarkFastExpSortMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	da := randSizeDist(rng, 64)
	db := randSizeDist(rng, 64)
	dm := randMemDist(rng, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExpJoinCost3(SortMerge, da, db, dm)
	}
}

func BenchmarkNaiveExpSortMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	da := randSizeDist(rng, 64)
	db := randSizeDist(rng, 64)
	dm := randMemDist(rng, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExpJoinCost3Naive(SortMerge, da, db, dm)
	}
}
