package cost

import (
	"math"

	"repro/internal/bufpool"
	"repro/internal/stats"
)

// This file is the batched expected-cost kernel. The DP inner loop prices
// every join method for one (left, right) candidate pair back to back, and
// the per-method expectations walk the same memory buckets with the same
// per-pair invariants (max, min, a+b, the √ and ⁴√ thresholds). The batch
// entry points hoist the per-session work — clamped bucket vectors, prefix
// tables — out of the per-candidate path and evaluate all methods in one
// fused pass, producing bit-identical values to the per-method routines
// (ExpJoinCostMem, ExpJoinCost3): each method's accumulator sees exactly the
// same floating-point operations in the same order.

// NumMethods is the number of join methods — the length of the per-method
// output vectors of the batched kernels, indexed by the Method constants
// (Methods() order).
const NumMethods = numMethods

// JoinCosts evaluates Φ(m, a, b, mem) for every method in one call, writing
// out[m] = JoinCost(m, a, b, mem). It is the b = 1 (fixed-parameter) batch.
func JoinCosts(a, b, mem float64, out *[NumMethods]float64) {
	if mem < 1 {
		mem = 1
	}
	out[SortMerge] = sortMergeCost(a, b, mem)
	out[GraceHash] = graceHashCost(a, b, mem)
	out[NestedLoop] = nestedLoopCost(a, b, mem)
	out[BlockNL] = blockNLCost(a, b, mem)
}

// MemBatch precomputes the bucket vectors of one memory distribution for
// fused all-methods expectation: the values clamped to ≥ 1 page (JoinCost's
// clamp), the probabilities, and BlockNL's per-bucket block size. Build one
// per session (per phase distribution) and reuse it for every candidate;
// Release returns the scratch vectors to the shared pool.
type MemBatch struct {
	n      int
	vals   []float64 // memory values clamped to ≥ 1, in Dist bucket order
	probs  []float64
	blocks []float64 // max(1, mem−2): BlockNL's block size per bucket
}

// NewMemBatch builds the bucket vectors for dm using pooled scratch slices.
func NewMemBatch(dm *stats.Dist) *MemBatch {
	n := dm.Len()
	mb := &MemBatch{
		n:      n,
		vals:   bufpool.GetFloats(n),
		probs:  bufpool.GetFloats(n),
		blocks: bufpool.GetFloats(n),
	}
	for i := 0; i < n; i++ {
		v := dm.Value(i)
		if v < 1 {
			v = 1
		}
		mb.vals[i] = v
		mb.probs[i] = dm.Prob(i)
		bl := v - 2
		if bl < 1 {
			bl = 1
		}
		mb.blocks[i] = bl
	}
	return mb
}

// Len returns the bucket count of the underlying distribution.
func (mb *MemBatch) Len() int { return mb.n }

// Release returns the batch's scratch vectors to the pool. The batch must
// not be used afterwards.
func (mb *MemBatch) Release() {
	bufpool.PutFloats(mb.vals)
	bufpool.PutFloats(mb.probs)
	bufpool.PutFloats(mb.blocks)
	mb.vals, mb.probs, mb.blocks = nil, nil, nil
}

// ExpJoinCosts writes out[m] = ExpJoinCostMem(m, a, b, dm) for every method
// in one pass over the buckets. Per-pair invariants (the formulas' max, min,
// sum and the √/⁴√ case thresholds) are hoisted; each bucket contributes to
// each method's accumulator with exactly the arithmetic the per-method
// Dist.Expect walk performs, so the results are bit-identical.
func (mb *MemBatch) ExpJoinCosts(a, b float64, out *[NumMethods]float64) {
	l := math.Max(a, b)
	s := math.Min(a, b)
	sum := a + b
	rl := math.Sqrt(l)
	rrl := math.Sqrt(rl)
	rs := math.Sqrt(s)
	rrs := math.Sqrt(rs)
	thr := s + 2
	nlExp := a + a*b
	aPos := a > 0
	var sm, gh, nl, bnl float64
	for i, mem := range mb.vals {
		p := mb.probs[i]
		var f float64
		switch { // smFactor(l, mem)
		case mem > rl:
			f = 2
		case mem > rrl:
			f = 4
		default:
			f = 6
		}
		sm += f * sum * p
		switch { // ghFactor(s, mem)
		case mem > rs:
			f = 2
		case mem > rrs:
			f = 4
		default:
			f = 6
		}
		gh += f * sum * p
		if mem >= thr { // nestedLoopCost's cache threshold
			nl += sum * p
		} else {
			nl += nlExp * p
		}
		if aPos {
			bnl += (a + math.Ceil(a/mb.blocks[i])*b) * p
		} else {
			bnl += b * p
		}
	}
	out[SortMerge] = sm
	out[GraceHash] = gh
	out[NestedLoop] = nl
	out[BlockNL] = bnl
}

// MemTable is the per-session precomputation for the three-distribution
// expectation E[Φ(m, A, B, M)]: the memory distribution clamped once (the
// fast routines' JoinCost-clamp agreement) and its prefix table built once,
// shared across every candidate and every method.
type MemTable struct {
	raw     *stats.Dist
	clamped *stats.Dist
	table   *stats.PrefixTable
}

// NewMemTable builds the shared memory-side tables for dm.
func NewMemTable(dm *stats.Dist) *MemTable {
	c := clampMem(dm)
	return &MemTable{raw: dm, clamped: c, table: stats.NewPrefixTable(c)}
}

// Dist returns the raw (unclamped) distribution the table was built from.
func (mt *MemTable) Dist() *stats.Dist { return mt.raw }

// ExpJoinCosts3 writes out[m] = ExpJoinCost3(m, da, db, mt.Dist()) for every
// method, building the operand prefix tables once and sharing them (and the
// session memory table) across the sort-merge, Grace-hash and nested-loop
// sweeps. BlockNL has no piecewise-constant structure and keeps its naive
// product, exactly as ExpJoinCost3 does. Table construction is a pure
// function of the distributions and the sweeps are read-only, so each
// method's value is bit-identical to its per-method call.
func ExpJoinCosts3(da, db *stats.Dist, mt *MemTable, out *[NumMethods]float64) {
	ta, tb := stats.NewPrefixTable(da), stats.NewPrefixTable(db)
	out[SortMerge] = fastExpSortMergeT(ta, tb, mt.table)
	out[GraceHash] = fastExpGraceHashT(ta, tb, mt.table)
	out[NestedLoop] = fastExpNestedLoopT(ta, tb, mt.table)
	out[BlockNL] = ExpJoinCost3Naive(BlockNL, da, db, mt.clamped)
}
