package cost

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestJointExpMatchesIndependentAtRhoZero(t *testing.T) {
	da := stats.MustNew([]float64{1000, 50000}, []float64{0.5, 0.5})
	dm := stats.MustNew([]float64{50, 2000}, []float64{0.5, 0.5})
	joint, err := stats.CorrelatedJoint(da, dm, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods() {
		ind, dep := IndependenceErrorSizeMem(m, joint, 40000)
		if math.Abs(ind-dep) > 1e-6*(1+math.Abs(ind)) {
			t.Errorf("%v: independent %v != dependent %v at rho=0", m, ind, dep)
		}
	}
}

func TestJointExpDirectComputation(t *testing.T) {
	// Hand-checked 2-atom joint: (a=100, m=2000) w.p. 0.5, (a=50000, m=50)
	// w.p. 0.5 — big input always meets small memory.
	joint, err := stats.NewJoint([][3]float64{
		{100, 2000, 1},
		{50000, 50, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	const b = 40000
	want := 0.5*JoinCost(GraceHash, 100, b, 2000) + 0.5*JoinCost(GraceHash, 50000, b, 50)
	if got := ExpJoinCostSizeMemJoint(GraceHash, joint, b); math.Abs(got-want) > 1e-9 {
		t.Errorf("joint expectation %v, want %v", got, want)
	}
	// The independence computation differs because it also mixes
	// (100, 50) and (50000, 2000).
	ind, dep := IndependenceErrorSizeMem(GraceHash, joint, b)
	if math.Abs(ind-dep) < 1 {
		t.Errorf("independence should misestimate this fully-coupled joint: ind %v dep %v", ind, dep)
	}
}

func TestNegativeCorrelationUnderestimatesCost(t *testing.T) {
	// Negative size↔memory correlation (busy system): expensive regimes
	// co-occur, so the true expected cost for memory-sensitive methods
	// exceeds the independence estimate.
	da := stats.MustNew([]float64{2000, 60000}, []float64{0.5, 0.5})
	dm := stats.MustNew([]float64{100, 2500}, []float64{0.5, 0.5})
	joint, err := stats.CorrelatedJoint(da, dm, -0.9)
	if err != nil {
		t.Fatal(err)
	}
	ind, dep := IndependenceErrorSizeMem(GraceHash, joint, 40000)
	if dep <= ind {
		t.Errorf("negative correlation: true %v not above independent %v", dep, ind)
	}
}
