package cost

import (
	"math"

	"repro/internal/stats"
)

// This file implements the paper's §3.6.1–3.6.2 linear-time expected-cost
// computations: E[Φ(m, A, B, M)] for independent distributions of the two
// input sizes and memory in O(b_M + b_A + b_B) bucket visits, versus the
// naive O(b_M·b_A·b_B) triple loop. The trick is the paper's: split on
// {A ≤ B} vs {A > B} so the max/min in the formula resolves, then the inner
// sums become prefix sums that a single sweep over each distribution's
// buckets produces.

// ExpJoinCostMem returns E_M[Φ(m, a, b, M)] for fixed input sizes — the
// single-uncertain-parameter expectation Algorithm C evaluates at every DAG
// node (paper §3.4: "this computation requires b evaluations of the cost
// formula").
func ExpJoinCostMem(m Method, a, b float64, dm *stats.Dist) float64 {
	return dm.Expect(func(mem float64) float64 { return JoinCost(m, a, b, mem) })
}

// ExpJoinCost3Naive returns E[Φ(m, A, B, M)] by the naive triple loop over
// all bucket combinations. It is the reference implementation the fast
// routines are verified against, and the baseline of experiment E6.
func ExpJoinCost3Naive(m Method, da, db, dm *stats.Dist) float64 {
	return stats.ExpectProduct3(da, db, dm, func(a, b, mem float64) float64 {
		return JoinCost(m, a, b, mem)
	})
}

// ExpJoinCost3 returns E[Φ(m, A, B, M)] for independent size and memory
// distributions, using the linear-time algorithms of §3.6.1 (sort-merge),
// §3.6.2 (nested-loop) and their straightforward Grace-hash analogue.
// BlockNL has no piecewise-constant structure to exploit and falls back to
// the naive product.
func ExpJoinCost3(m Method, da, db, dm *stats.Dist) float64 {
	dm = clampMem(dm)
	switch m {
	case SortMerge:
		return fastExpSortMerge(da, db, dm)
	case GraceHash:
		return fastExpGraceHash(da, db, dm)
	case NestedLoop:
		return fastExpNestedLoop(da, db, dm)
	default:
		return ExpJoinCost3Naive(m, da, db, dm)
	}
}

// clampMem maps the memory distribution through max(1, ·) so the fast
// routines agree exactly with JoinCost's clamping.
func clampMem(dm *stats.Dist) *stats.Dist {
	if dm.Min() >= 1 {
		return dm
	}
	return dm.Map(func(v float64) float64 { return math.Max(1, v) })
}

// kappaSweeps computes E_M[k(M, x)] for the three-case pass-count factor
//
//	k(M, x) = 2 if M > √x; 4 if x^¼ < M ≤ √x; 6 otherwise
//	        = 2 + 2·Pr[M ≤ √x] + 2·Pr[M ≤ x^¼]  (in expectation over M)
//
// using two LE-sweeps over the memory distribution. Queries must arrive
// with non-decreasing x to stay linear.
type kappaSweeps struct {
	sqrtSweep *stats.Sweeper
	qrtSweep  *stats.Sweeper
}

func newKappaSweeps(tm *stats.PrefixTable) *kappaSweeps {
	return &kappaSweeps{
		sqrtSweep: stats.NewSweeper(tm),
		qrtSweep:  stats.NewSweeper(tm),
	}
}

// at returns E_M[k(M, x)].
func (k *kappaSweeps) at(x float64) float64 {
	r := math.Sqrt(x)
	return 2 + 2*k.sqrtSweep.PrLE(r) + 2*k.qrtSweep.PrLE(math.Sqrt(r))
}

// fastExpSortMerge computes E[k(M, max(A,B))·(A+B)] in
// O(b_M + b_A + b_B) as in §3.6.1:
//
//	E[Φ·1{A≤B}] = Σ_b Pr[B=b]·κ(b)·( Σ_{a≤b} a·Pr[A=a] + b·Pr[A≤b] )
//	E[Φ·1{A>B}] = Σ_a Pr[A=a]·κ(a)·( Σ_{b<a} b·Pr[B=b] + a·Pr[B<a] )
func fastExpSortMerge(da, db, dm *stats.Dist) float64 {
	return fastExpSortMergeT(stats.NewPrefixTable(da), stats.NewPrefixTable(db), stats.NewPrefixTable(dm))
}

// fastExpSortMergeT is fastExpSortMerge over prebuilt prefix tables, so the
// batched kernel (ExpJoinCosts3) can share one table set across methods.
func fastExpSortMergeT(ta, tb, tm *stats.PrefixTable) float64 {
	da, db := ta.Dist(), tb.Dist()

	total := 0.0
	// Term 1: A ≤ B, larger input is B. Iterate b ascending.
	kap := newKappaSweeps(tm)
	swA := stats.NewSweeper(ta)
	for i := 0; i < db.Len(); i++ {
		b := db.Value(i)
		pa := swA.PrLE(b)
		if pa == 0 {
			continue
		}
		pea := swA.PartialExpLE(b)
		total += db.Prob(i) * kap.at(b) * (pea + b*pa)
	}
	// Term 2: A > B, larger input is A. Iterate a ascending.
	kap = newKappaSweeps(tm)
	swB := stats.NewSweeper(tb)
	for i := 0; i < da.Len(); i++ {
		a := da.Value(i)
		pb := swB.PrLT(a)
		if pb == 0 {
			continue
		}
		peb := swB.PartialExpLT(a)
		total += da.Prob(i) * kap.at(a) * (peb + a*pb)
	}
	return total
}

// fastExpGraceHash computes E[k(M, min(A,B))·(A+B)] in O(b_M + b_A + b_B):
//
//	E[Φ·1{A≤B}] = Σ_a Pr[A=a]·κ(a)·( a·Pr[B≥a] + Σ_{b≥a} b·Pr[B=b] )
//	E[Φ·1{A>B}] = Σ_b Pr[B=b]·κ(b)·( b·Pr[A>b] + Σ_{a>b} a·Pr[A=a] )
func fastExpGraceHash(da, db, dm *stats.Dist) float64 {
	return fastExpGraceHashT(stats.NewPrefixTable(da), stats.NewPrefixTable(db), stats.NewPrefixTable(dm))
}

// fastExpGraceHashT is fastExpGraceHash over prebuilt prefix tables.
func fastExpGraceHashT(ta, tb, tm *stats.PrefixTable) float64 {
	da, db := ta.Dist(), tb.Dist()

	total := 0.0
	// Term 1: A ≤ B, smaller input is A. Pr[B ≥ a] = 1 − Pr[B < a].
	kap := newKappaSweeps(tm)
	swB := stats.NewSweeper(tb)
	meanB := tb.Mean()
	for i := 0; i < da.Len(); i++ {
		a := da.Value(i)
		pbGE := 1 - swB.PrLT(a)
		if pbGE == 0 {
			continue
		}
		pebGE := meanB - swB.PartialExpLT(a)
		total += da.Prob(i) * kap.at(a) * (a*pbGE + pebGE)
	}
	// Term 2: A > B, smaller input is B. Pr[A > b] = 1 − Pr[A ≤ b].
	kap = newKappaSweeps(tm)
	swA := stats.NewSweeper(ta)
	meanA := ta.Mean()
	for i := 0; i < db.Len(); i++ {
		b := db.Value(i)
		paGT := 1 - swA.PrLE(b)
		if paGT == 0 {
			continue
		}
		peaGT := meanA - swA.PartialExpLE(b)
		total += db.Prob(i) * kap.at(b) * (b*paGT + peaGT)
	}
	return total
}

// fastExpNestedLoop computes the §3.6.2 expectation in O(b_M + b_A + b_B).
// With S = min(A, B) and pM(s) = Pr[M ≥ s + 2]:
//
//	E[Φ·1{A≤B}] = Σ_a Pr[A=a]·( pM(a)·(a·PB≥ + PE_B≥)
//	                          + (1−pM(a))·(a·PB≥ + a·PE_B≥) )
//	E[Φ·1{A>B}] = Σ_b Pr[B=b]·( pM(b)·(PE_A> + b·PA>)
//	                          + (1−pM(b))·(1+b)·PE_A> )
//
// where PB≥ = Pr[B ≥ a], PE_B≥ = Σ_{b≥a} b·Pr[B=b], PA> = Pr[A > b],
// PE_A> = Σ_{a>b} a·Pr[A=a].
func fastExpNestedLoop(da, db, dm *stats.Dist) float64 {
	return fastExpNestedLoopT(stats.NewPrefixTable(da), stats.NewPrefixTable(db), stats.NewPrefixTable(dm))
}

// fastExpNestedLoopT is fastExpNestedLoop over prebuilt prefix tables.
func fastExpNestedLoopT(ta, tb, tm *stats.PrefixTable) float64 {
	da, db := ta.Dist(), tb.Dist()

	total := 0.0
	// Term 1: A ≤ B (S = A). Iterate a ascending; thresholds a+2 ascend.
	swM := stats.NewSweeper(tm)
	swB := stats.NewSweeper(tb)
	meanB := tb.Mean()
	for i := 0; i < da.Len(); i++ {
		a := da.Value(i)
		pbGE := 1 - swB.PrLT(a)
		if pbGE == 0 {
			continue
		}
		pebGE := meanB - swB.PartialExpLT(a)
		pM := 1 - swM.PrLT(a+2) // Pr[M ≥ a+2]
		cheap := a*pbGE + pebGE
		expensive := a*pbGE + a*pebGE
		total += da.Prob(i) * (pM*cheap + (1-pM)*expensive)
	}
	// Term 2: A > B (S = B). Iterate b ascending.
	swM = stats.NewSweeper(tm)
	swA := stats.NewSweeper(ta)
	meanA := ta.Mean()
	for i := 0; i < db.Len(); i++ {
		b := db.Value(i)
		paGT := 1 - swA.PrLE(b)
		if paGT == 0 {
			continue
		}
		peaGT := meanA - swA.PartialExpLE(b)
		pM := 1 - swM.PrLT(b+2)
		cheap := peaGT + b*paGT
		expensive := (1 + b) * peaGT
		total += db.Prob(i) * (pM*cheap + (1-pM)*expensive)
	}
	return total
}
