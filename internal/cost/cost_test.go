package cost

import (
	"math"
	"testing"
)

func TestMethodString(t *testing.T) {
	for _, m := range Methods() {
		if m.String() == "" {
			t.Errorf("empty String for method %d", int(m))
		}
	}
	if Method(99).String() == "" {
		t.Error("empty String for unknown method")
	}
	if len(Methods()) != numMethods {
		t.Errorf("Methods() has %d entries, want %d", len(Methods()), numMethods)
	}
}

func TestSortedOutput(t *testing.T) {
	if !SortMerge.SortedOutput() {
		t.Error("sort-merge output not sorted")
	}
	for _, m := range []Method{GraceHash, NestedLoop, BlockNL} {
		if m.SortedOutput() {
			t.Errorf("%v claims sorted output", m)
		}
	}
}

// TestExample11Plan1 reproduces the sort-merge costs of paper Example 1.1:
// A = 1,000,000 pages, B = 400,000 pages. With more than 1000 pages of
// memory (√1,000,000) the join takes two passes; below, at least another.
func TestExample11Plan1(t *testing.T) {
	const a, b = 1_000_000, 400_000
	if got := JoinCost(SortMerge, a, b, 2000); got != 2*(a+b) {
		t.Errorf("SM at 2000 pages = %v, want %v", got, 2*(a+b))
	}
	if got := JoinCost(SortMerge, a, b, 700); got != 4*(a+b) {
		t.Errorf("SM at 700 pages = %v, want %v", got, 4*(a+b))
	}
	// Exactly at the breakpoint M = 1000 = √L the formula is in the 4-pass
	// regime (strict >).
	if got := JoinCost(SortMerge, a, b, 1000); got != 4*(a+b) {
		t.Errorf("SM at 1000 pages = %v, want %v", got, 4*(a+b))
	}
	if got := JoinCost(SortMerge, a, b, 1001); got != 2*(a+b) {
		t.Errorf("SM at 1001 pages = %v, want %v", got, 2*(a+b))
	}
	// Far below the fourth root (√√1e6 ≈ 31.6): six passes.
	if got := JoinCost(SortMerge, a, b, 20); got != 6*(a+b) {
		t.Errorf("SM at 20 pages = %v, want %v", got, 6*(a+b))
	}
}

// TestExample11Plan2 reproduces the Grace hash side: the breakpoint is the
// square root of the smaller relation (√400,000 ≈ 632.5, the paper's 633).
func TestExample11Plan2(t *testing.T) {
	const a, b = 1_000_000, 400_000
	if got := JoinCost(GraceHash, a, b, 700); got != 2*(a+b) {
		t.Errorf("GH at 700 pages = %v, want %v (700 > √400000)", got, 2*(a+b))
	}
	if got := JoinCost(GraceHash, a, b, 632); got != 4*(a+b) {
		t.Errorf("GH at 632 pages = %v, want %v", got, 4*(a+b))
	}
	if got := JoinCost(GraceHash, a, b, 2000); got != 2*(a+b) {
		t.Errorf("GH at 2000 pages = %v, want %v", got, 2*(a+b))
	}
	// Symmetric in input order: min picks the same side.
	if JoinCost(GraceHash, b, a, 700) != JoinCost(GraceHash, a, b, 700) {
		t.Error("GraceHash not symmetric")
	}
}

func TestNestedLoopFormula(t *testing.T) {
	// Paper §3.6.2: |A| + |B| if M ≥ S+2, else |A| + |A|·|B|.
	if got := JoinCost(NestedLoop, 10, 100, 12); got != 110 {
		t.Errorf("NL with fitting inner = %v, want 110", got)
	}
	if got := JoinCost(NestedLoop, 10, 100, 11); got != 10+10*100 {
		t.Errorf("NL without fitting inner = %v, want 1010", got)
	}
	// Boundary: M = S + 2 is the cheap case (≥).
	if got := JoinCost(NestedLoop, 100, 10, 12); got != 110 {
		t.Errorf("NL at boundary = %v, want 110", got)
	}
}

func TestBlockNLFormula(t *testing.T) {
	// |A| + ceil(|A|/(M-2))·|B|.
	if got := JoinCost(BlockNL, 100, 50, 12); got != 100+10*50 {
		t.Errorf("BNL = %v, want 600", got)
	}
	// Degenerate memory clamps the block to one page.
	if got := JoinCost(BlockNL, 10, 5, 1); got != 10+10*5 {
		t.Errorf("BNL tiny memory = %v, want 60", got)
	}
	if got := JoinCost(BlockNL, 0, 5, 10); got != 5 {
		t.Errorf("BNL empty outer = %v, want 5", got)
	}
}

func TestJoinCostClampsMemory(t *testing.T) {
	// mem < 1 behaves as 1 for every method.
	for _, m := range Methods() {
		if JoinCost(m, 100, 50, 0) != JoinCost(m, 100, 50, 1) {
			t.Errorf("%v: mem=0 and mem=1 differ", m)
		}
	}
}

func TestJoinCostMonotoneInMemory(t *testing.T) {
	// More memory never makes any method more expensive.
	for _, m := range Methods() {
		prev := math.Inf(1)
		for mem := 1.0; mem < 4000; mem *= 1.3 {
			c := JoinCost(m, 100000, 40000, mem)
			if c > prev+1e-9 {
				t.Errorf("%v: cost increased from %v to %v at mem=%v", m, prev, c, mem)
			}
			prev = c
		}
	}
}

func TestMemBreakpoints(t *testing.T) {
	bp := MemBreakpoints(SortMerge, 1_000_000, 400_000)
	if len(bp) != 2 || math.Abs(bp[0]-math.Sqrt(1000)) > 1e-9 || bp[1] != 1000 {
		t.Errorf("SM breakpoints = %v", bp)
	}
	bp = MemBreakpoints(GraceHash, 1_000_000, 400_000)
	if len(bp) != 2 || math.Abs(bp[1]-math.Sqrt(400_000)) > 1e-9 {
		t.Errorf("GH breakpoints = %v", bp)
	}
	bp = MemBreakpoints(NestedLoop, 100, 10)
	if len(bp) != 1 || bp[0] != 12 {
		t.Errorf("NL breakpoints = %v", bp)
	}
	if MemBreakpoints(BlockNL, 100, 10) != nil {
		t.Error("BNL breakpoints not nil")
	}
	// Cost really is constant between consecutive breakpoints.
	for _, m := range []Method{SortMerge, GraceHash, NestedLoop} {
		bps := MemBreakpoints(m, 90000, el(40000))
		edges := append([]float64{1}, bps...)
		edges = append(edges, edges[len(edges)-1]*2+10)
		for i := 0; i+1 < len(edges); i++ {
			lo, hi := edges[i], edges[i+1]
			mid := (lo + hi) / 2
			c1 := JoinCost(m, 90000, el(40000), lo+1e-6)
			c2 := JoinCost(m, 90000, el(40000), mid)
			if c1 != c2 {
				t.Errorf("%v: cost varies within level set (%v, %v): %v vs %v", m, lo, hi, c1, c2)
			}
		}
	}
}

// el is the identity; it exists to keep the table above readable.
func el(x float64) float64 { return x }

func TestScanCosts(t *testing.T) {
	if got := SeqScanCost(500); got != 500 {
		t.Errorf("SeqScanCost = %v", got)
	}
	// Clustered index range scan: height + fraction of pages.
	if got := IndexScanCost(0.1, 1000, 10000, 3, true); got != 3+100 {
		t.Errorf("clustered IndexScanCost = %v", got)
	}
	// Non-clustered: height + one fetch per matching row.
	if got := IndexScanCost(0.01, 1000, 10000, 3, false); got != 3+100 {
		t.Errorf("non-clustered IndexScanCost = %v", got)
	}
	// Selectivity clamped to [0,1].
	if got := IndexScanCost(-0.5, 1000, 10000, 3, true); got != 3 {
		t.Errorf("negative sel = %v", got)
	}
	if got := IndexScanCost(2, 1000, 10000, 3, true); got != 1003 {
		t.Errorf("sel > 1 = %v", got)
	}
}

func TestSortCost(t *testing.T) {
	// Fits in memory: free (pipelined in-memory sort).
	if got := SortCost(100, 200); got != 0 {
		t.Errorf("in-memory sort = %v, want 0", got)
	}
	// Example 1.1's result sort: 3000 pages with 2000 pages of memory — one
	// merge pass, 2 I/Os per page.
	if got := SortCost(3000, 2000); got != 6000 {
		t.Errorf("SortCost(3000, 2000) = %v, want 6000", got)
	}
	// With 700 pages: ceil(3000/700) = 5 runs, fan-in 699 → still one pass.
	if got := SortCost(3000, 700); got != 6000 {
		t.Errorf("SortCost(3000, 700) = %v, want 6000", got)
	}
	// Tiny memory forces multiple passes.
	if got := SortCost(1000, 4); got <= 2000 {
		t.Errorf("SortCost(1000, 4) = %v, want > 2000 (multiple passes)", got)
	}
	// Memory is clamped to at least 3 pages.
	if SortCost(1000, 0) != SortCost(1000, 3) {
		t.Error("SortCost mem clamp missing")
	}
}

func TestSortMemBreakpoints(t *testing.T) {
	bp := SortMemBreakpoints(10000)
	if len(bp) != 2 || bp[0] != 100 || bp[1] != 10000 {
		t.Errorf("SortMemBreakpoints = %v", bp)
	}
	if SortMemBreakpoints(0) != nil {
		t.Error("SortMemBreakpoints(0) not nil")
	}
}
