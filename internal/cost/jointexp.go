package cost

import "repro/internal/stats"

// ExpJoinCostSizeMemJoint returns E[Φ(m, A, b, M)] when the outer input's
// size A and the available memory M are *dependent*, described by a joint
// distribution over (pages, memory) pairs. The other input's size is fixed.
// This extends the paper's framework in the direction its §4 names as
// future work: the independence assumption of §3.6 dropped for one
// parameter pair. The joint's memory coordinate is clamped to ≥ 1 page like
// JoinCost itself.
func ExpJoinCostSizeMemJoint(m Method, joint *stats.Joint, bPages float64) float64 {
	return joint.Expect(func(aPages, mem float64) float64 {
		return JoinCost(m, aPages, bPages, mem)
	})
}

// IndependenceErrorSizeMem quantifies the mistake of assuming independence:
// it returns the expected cost computed from the joint's *marginals* under
// the product coupling (what Algorithm D's independence assumption would
// compute) and the true dependent expectation.
func IndependenceErrorSizeMem(m Method, joint *stats.Joint, bPages float64) (independent, dependent float64) {
	da, dm := joint.MarginalX(), joint.MarginalY()
	independent = ExpJoinCost3(m, da, stats.Point(bPages), dm)
	dependent = ExpJoinCostSizeMemJoint(m, joint, bPages)
	return independent, dependent
}
