package cost

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// randDist builds a random positive distribution with n buckets, optionally
// including sub-page memory values so the clamp path is exercised.
func randDist(rng *rand.Rand, n int, subPage bool) *stats.Dist {
	vals := make([]float64, n)
	weights := make([]float64, n)
	for i := range vals {
		v := math.Exp(rng.Float64()*12 - 2) // ~0.14 .. 22026
		if !subPage && v < 1 {
			v += 1
		}
		vals[i] = v
		weights[i] = rng.Float64() + 0.01
	}
	return stats.MustNew(vals, weights)
}

// bitsEqual fails the test unless got and want are the same float64 bit
// pattern — the batched kernels promise bit-identity, not tolerance.
func bitsEqual(t *testing.T, label string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("%s: got %v (%#x), want %v (%#x)",
			label, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// TestJoinCostsMatchesJoinCost checks the fixed-memory batch against the
// per-method formula, including the mem < 1 clamp and a = 0.
func TestJoinCostsMatchesJoinCost(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := [][3]float64{
		{0, 500, 100}, {500, 0, 100}, {0, 0, 1}, {1, 1, 0.25}, {3, 7, 2},
	}
	for i := 0; i < 200; i++ {
		cases = append(cases, [3]float64{
			math.Exp(rng.Float64() * 10), math.Exp(rng.Float64() * 10),
			math.Exp(rng.Float64()*8 - 2),
		})
	}
	var out [NumMethods]float64
	for _, c := range cases {
		a, b, mem := c[0], c[1], c[2]
		JoinCosts(a, b, mem, &out)
		for _, m := range Methods() {
			bitsEqual(t, m.String(), out[m], JoinCost(m, a, b, mem))
		}
	}
}

// TestMemBatchMatchesExpJoinCostMem checks the fused bucket pass against the
// per-method Dist.Expect walk bit for bit across random sizes and memory
// distributions (with and without sub-page buckets that trigger clamping).
func TestMemBatchMatchesExpJoinCostMem(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		dm := randDist(rng, 1+rng.Intn(9), trial%2 == 0)
		mb := NewMemBatch(dm)
		var out [NumMethods]float64
		for pair := 0; pair < 20; pair++ {
			a := math.Exp(rng.Float64() * 11)
			b := math.Exp(rng.Float64() * 11)
			if pair == 0 {
				a = 0
			}
			mb.ExpJoinCosts(a, b, &out)
			for _, m := range Methods() {
				bitsEqual(t, m.String(), out[m], ExpJoinCostMem(m, a, b, dm))
			}
		}
		mb.Release()
	}
}

// TestExpJoinCosts3MatchesExpJoinCost3 checks the shared-table batch against
// the per-method three-distribution routine bit for bit. Sub-page memory
// buckets exercise the clamp (which can merge duplicate clamped values).
func TestExpJoinCosts3MatchesExpJoinCost3(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 40; trial++ {
		dm := randDist(rng, 1+rng.Intn(7), trial%2 == 0)
		mt := NewMemTable(dm)
		var out [NumMethods]float64
		for pair := 0; pair < 10; pair++ {
			da := randDist(rng, 1+rng.Intn(6), false)
			db := randDist(rng, 1+rng.Intn(6), false)
			ExpJoinCosts3(da, db, mt, &out)
			for _, m := range Methods() {
				bitsEqual(t, m.String(), out[m], ExpJoinCost3(m, da, db, dm))
			}
		}
	}
}

// TestMemBatchReuseAfterRelease ensures pooled scratch reuse yields correct
// vectors for a different-sized successor batch.
func TestMemBatchReuseAfterRelease(t *testing.T) {
	d1 := stats.MustNew([]float64{0.5, 200, 700, 1500, 3000}, []float64{0.1, 0.2, 0.4, 0.2, 0.1})
	mb := NewMemBatch(d1)
	mb.Release()
	d2 := stats.MustNew([]float64{100, 900}, []float64{0.5, 0.5})
	mb2 := NewMemBatch(d2)
	defer mb2.Release()
	var out [NumMethods]float64
	mb2.ExpJoinCosts(123, 4567, &out)
	for _, m := range Methods() {
		bitsEqual(t, m.String(), out[m], ExpJoinCostMem(m, 123, 4567, d2))
	}
}
