// Package cost implements the optimizer's cost model: the function
// Φ(plan, v) of paper §3.1 mapping a plan and a vector of parameter values
// to an I/O cost, plus the expected-cost machinery LEC optimization adds.
//
// Following the paper (§3.6, footnote 2), the formulas are the simplified
// I/O-only analyses of [Sha86]: each join method's cost is a small number of
// cases over the relationship between available memory M and the input
// sizes. "We speculate that a return to simple formulas in combination with
// LEC optimization may be more reliable" — these are exactly those formulas.
//
// All sizes and memory are measured in pages.
package cost

import (
	"fmt"
	"math"
)

// Method identifies a binary join algorithm.
type Method int

// Join methods considered by the optimizer.
const (
	// SortMerge sorts both inputs and merges (paper §3.6.1). Its output is
	// ordered on the join column, which matters for ORDER BY queries —
	// Example 1.1's Plan 1 exploits exactly this.
	SortMerge Method = iota
	// GraceHash is the Grace hash join of [Sha86]: partition both inputs,
	// then join partition pairs. Output is unordered.
	GraceHash
	// NestedLoop is the paper's two-case page nested-loop join (§3.6.2):
	// one pass over each input when the smaller fits in memory, quadratic
	// otherwise.
	NestedLoop
	// BlockNL is the classical block nested-loop refinement; it is not in
	// the paper's formula set but rounds out the method space and gives the
	// simulator a method whose cost varies smoothly with memory.
	BlockNL
	numMethods = 4
)

// Methods lists every join method, in a fixed order.
func Methods() []Method {
	return []Method{SortMerge, GraceHash, NestedLoop, BlockNL}
}

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case SortMerge:
		return "sort-merge"
	case GraceHash:
		return "grace-hash"
	case NestedLoop:
		return "nested-loop"
	case BlockNL:
		return "block-nested-loop"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// SortedOutput reports whether the method emits rows ordered on the join
// column.
func (m Method) SortedOutput() bool { return m == SortMerge }

// JoinCost returns Φ for the method joining inputs of a and b pages with
// mem pages of buffer memory. a is the outer/left input where the method is
// asymmetric. Sizes and memory must be non-negative; mem below 1 page is
// treated as 1 (a scan needs at least one buffer page).
func JoinCost(m Method, a, b, mem float64) float64 {
	if mem < 1 {
		mem = 1
	}
	switch m {
	case SortMerge:
		return sortMergeCost(a, b, mem)
	case GraceHash:
		return graceHashCost(a, b, mem)
	case NestedLoop:
		return nestedLoopCost(a, b, mem)
	case BlockNL:
		return blockNLCost(a, b, mem)
	default:
		panic(fmt.Sprintf("cost: unknown method %v", m))
	}
}

// sortMergeCost is the three-case formula of paper §3.6.1 with L the larger
// input: 2(|A|+|B|) when M > √L (two passes), 4(|A|+|B|) when
// L^¼ < M ≤ √L, and 6(|A|+|B|) below that.
func sortMergeCost(a, b, mem float64) float64 {
	l := math.Max(a, b)
	return smFactor(l, mem) * (a + b)
}

// smFactor returns the pass multiplier of the sort-merge formula for a
// larger-input size l.
func smFactor(l, mem float64) float64 {
	switch {
	case mem > math.Sqrt(l):
		return 2
	case mem > math.Sqrt(math.Sqrt(l)):
		return 4
	default:
		return 6
	}
}

// graceHashCost mirrors the sort-merge shape but keys off the smaller
// input S (Example 1.1: "if the available buffer size is greater than 633
// pages (the square root of the smaller relation), the hash join requires
// two passes").
func graceHashCost(a, b, mem float64) float64 {
	s := math.Min(a, b)
	return ghFactor(s, mem) * (a + b)
}

// ghFactor returns the pass multiplier of the Grace hash formula for a
// smaller-input size s.
func ghFactor(s, mem float64) float64 {
	switch {
	case mem > math.Sqrt(s):
		return 2
	case mem > math.Sqrt(math.Sqrt(s)):
		return 4
	default:
		return 6
	}
}

// nestedLoopCost is the paper's §3.6.2 formula with S the smaller input:
// |A| + |B| when M ≥ S + 2 (the smaller input is cached), and
// |A| + |A|·|B| otherwise (rescan the inner per outer page).
func nestedLoopCost(a, b, mem float64) float64 {
	s := math.Min(a, b)
	if mem >= s+2 {
		return a + b
	}
	return a + a*b
}

// blockNLCost is |A| + ⌈|A| / (M−2)⌉ · |B|: the outer is read once in
// blocks of M−2 pages, the inner rescanned per block.
func blockNLCost(a, b, mem float64) float64 {
	block := mem - 2
	if block < 1 {
		block = 1
	}
	if a <= 0 {
		return b
	}
	return a + math.Ceil(a/block)*b
}

// MemBreakpoints returns the memory values at which Φ(m, a, b, ·) changes —
// the boundaries of the cost formula's level sets in the memory dimension
// (paper §3.7: "for fixed relation sizes, the cost for a sort-merge join
// has one of three possible values ... we need deal with only three
// buckets"). The returned thresholds are ascending. Methods whose cost is
// not piecewise constant in memory (BlockNL) return nil.
func MemBreakpoints(m Method, a, b float64) []float64 {
	switch m {
	case SortMerge:
		l := math.Max(a, b)
		return ascendingUnique(math.Sqrt(math.Sqrt(l)), math.Sqrt(l))
	case GraceHash:
		s := math.Min(a, b)
		return ascendingUnique(math.Sqrt(math.Sqrt(s)), math.Sqrt(s))
	case NestedLoop:
		s := math.Min(a, b)
		return []float64{s + 2}
	default:
		return nil
	}
}

func ascendingUnique(vals ...float64) []float64 {
	out := vals[:0]
	prev := math.Inf(-1)
	for _, v := range vals {
		if v > prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}

// SeqScanCost is the cost of a full sequential scan.
func SeqScanCost(pages float64) float64 { return pages }

// IndexScanCost estimates a B-tree range access retrieving a sel fraction
// of the table: descend the tree, then read the matching leaf range. For a
// clustered index the data pages are contiguous (sel·pages); for a
// non-clustered index each matching row may cost a page fetch (sel·rows),
// capped at a full scan's worth of pages per retrieved row bound.
func IndexScanCost(sel, pages, rows float64, height int, clustered bool) float64 {
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	h := float64(height)
	if clustered {
		return h + sel*pages
	}
	fetches := sel * rows
	return h + fetches
}

// SortCost is the extra I/O of sorting pages of data with mem pages of
// buffer: zero when the input fits in memory, otherwise two I/Os per page
// per merge pass of an external merge sort.
func SortCost(pages, mem float64) float64 {
	if mem < 3 {
		mem = 3
	}
	if pages <= mem {
		return 0
	}
	runs := math.Ceil(pages / mem)
	fanin := mem - 1
	passes := math.Ceil(math.Log(runs) / math.Log(fanin))
	if passes < 1 {
		passes = 1
	}
	return 2 * pages * passes
}

// HashAggCost is the extra I/O of hash aggregation over `input` pages into
// `groups` pages of groups: free when the group table fits in memory,
// otherwise one partition pass (write + re-read) over the input — the same
// discontinuity shape as the join formulas, which is what makes the
// aggregate-method choice another LEC decision (the paper's §1 lists
// "sizes of groups" among the uncertain query parameters).
func HashAggCost(input, groups, mem float64) float64 {
	if mem < 3 {
		mem = 3
	}
	if groups <= mem-2 {
		return 0
	}
	return 2 * input
}

// SortAggCost is the extra I/O of sort-based aggregation: the input is
// sorted on the group key (free when already sorted — sorted is the
// caller's knowledge of the input's order) and then aggregated in a
// streaming pass.
func SortAggCost(input, mem float64, sorted bool) float64 {
	if sorted {
		return 0
	}
	return SortCost(input, mem)
}

// SortMemBreakpoints returns the memory thresholds at which SortCost(pages, ·)
// changes value, ascending. Because pass counts are integral, the cost is a
// step function of memory; the interesting boundaries for the optimizer are
// where the data first fits (M = pages) and where the run/merge structure
// changes. We return the fit boundary plus the square-root boundary, which
// between them capture the practical regimes.
func SortMemBreakpoints(pages float64) []float64 {
	if pages <= 0 {
		return nil
	}
	return ascendingUnique(math.Sqrt(pages), pages)
}
