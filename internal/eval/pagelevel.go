package eval

import (
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/exec"
	"repro/internal/plan"
)

// RunPageLevel executes a left-deep plan at page granularity: every
// operator's page-access pattern is replayed through an LRU buffer pool
// (internal/exec), with the pool re-sized to the trace's memory at each
// phase boundary. It is the most detailed of the three cost models in this
// repository (closed-form formulas < procedural simulator < page-level
// replay) and exists to confirm that the optimizer's decisions survive all
// the way down.
//
// Intermediate join results are materialized between phases (sized by the
// plan's estimates), matching the paper's model where each join is a
// phase. Scans stream from base tables.
func RunPageLevel(n plan.Node, tr Trace) (IOStats, error) {
	joins := plan.NumJoins(n)
	total := IOStats{}
	joinIdx := 0
	// cur tracks the materialized intermediate result as a synthetic table.
	var rec func(m plan.Node) (exec.Table, error)
	rec = func(m plan.Node) (exec.Table, error) {
		switch v := m.(type) {
		case *plan.Scan:
			pages := int(v.Pages + 0.5)
			if pages < 1 {
				pages = 1
			}
			// Filters are applied while streaming; the scan reads the base
			// pages (index scans approximate with their access cost).
			base := int(v.AccessCost() + 0.5)
			if base < 1 {
				base = 1
			}
			return exec.Table{Name: "scan:" + v.Table, Pages: pagesOf(v, base, pages)}, nil
		case *plan.Join:
			left, err := rec(v.Left)
			if err != nil {
				return exec.Table{}, err
			}
			rightScan, ok := v.Right.(*plan.Scan)
			if !ok {
				return exec.Table{}, fmt.Errorf("eval: RunPageLevel requires a left-deep plan")
			}
			right, err := rec(rightScan)
			if err != nil {
				return exec.Table{}, err
			}
			mem := int(tr.at(joinIdx))
			if mem < 3 {
				mem = 3
			}
			pool := bufpool.New(mem)
			ex := exec.New(pool)
			switch {
			case v.Method.String() == "sort-merge":
				ex.SortMerge(left, right)
			case v.Method.String() == "grace-hash":
				ex.GraceHash(left, right)
			case v.Method.String() == "nested-loop":
				ex.NestedLoop(left, right)
			default:
				ex.BlockNL(left, right)
			}
			pool.Flush()
			s := pool.Stats()
			total.Reads += float64(s.Reads)
			total.Writes += float64(s.Writes)
			joinIdx++
			out := int(v.Pages + 0.5)
			if out < 1 {
				out = 1
			}
			return exec.Table{Name: fmt.Sprintf("join:%d", joinIdx), Pages: out}, nil
		case *plan.Sort:
			in, err := rec(v.Input)
			if err != nil {
				return exec.Table{}, err
			}
			if plan.SatisfiesOrder(v.Input, v.Key_) {
				return in, nil
			}
			mem := int(tr.at(joins - 1))
			if mem < 3 {
				mem = 3
			}
			pool := bufpool.New(mem)
			ex := exec.New(pool)
			ex.ExternalSort(in)
			pool.Flush()
			s := pool.Stats()
			// The sort's input read is double-counted (the producing join
			// already charged writing it is not modeled); subtract the
			// initial read to keep the sort's marginal cost.
			total.Reads += float64(s.Reads) - float64(in.Pages)
			total.Writes += float64(s.Writes)
			return in, nil
		default:
			return exec.Table{}, fmt.Errorf("eval: unknown node type %T", m)
		}
	}
	if _, err := rec(n); err != nil {
		return IOStats{}, err
	}
	return total, nil
}

// pagesOf picks the page count a downstream join sees from a scan: its
// filtered output size, with the access cost difference charged as reads
// by the consumer (the consumer touches the base pages through its own
// pool; we approximate by exposing the base read size when unfiltered).
func pagesOf(v *plan.Scan, base, filtered int) int {
	if filtered < base {
		// Filtering shrinks the stream the join consumes, but the scan
		// still touched `base` pages; the join-side replay reads the
		// filtered stream and the difference is charged nowhere — an
		// accepted approximation noted in the package comment.
		return filtered
	}
	return base
}
