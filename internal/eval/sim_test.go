package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/workload"
)

func scanOf(table string, idx int, pages float64) *plan.Scan {
	return &plan.Scan{
		Table: table, RelIdx: idx, Method: plan.SeqScan,
		BasePages: pages, BaseRows: pages * 10, Selectivity: 1,
		Pages: pages, Rows: pages * 10,
	}
}

func TestTraceAt(t *testing.T) {
	tr := Trace{100, 50}
	if tr.at(0) != 100 || tr.at(1) != 50 || tr.at(5) != 50 || tr.at(-1) != 100 {
		t.Error("Trace.at extension wrong")
	}
	if (Trace{}).at(0) != 1 {
		t.Error("empty trace should yield 1 page")
	}
	if (Trace{0.1}).at(0) != 1 {
		t.Error("sub-page memory should clamp to 1")
	}
}

func TestSimScan(t *testing.T) {
	io := simScan(scanOf("t", 0, 100))
	if io.Reads != 100 || io.Writes != 0 {
		t.Errorf("seq scan I/O = %+v", io)
	}
	ix := &plan.Scan{
		Table: "t", Method: plan.IndexScan, IndexClustered: true, IndexHeight: 3,
		BasePages: 100, BaseRows: 1000, Selectivity: 0.1, Pages: 10, Rows: 100,
	}
	if io := simScan(ix); io.Reads != 13 {
		t.Errorf("index scan reads = %v, want 13", io.Reads)
	}
}

func TestSimSortRegimes(t *testing.T) {
	// In-memory: free.
	if io := simSort(100, 200); io.Total() != 0 {
		t.Errorf("in-memory sort I/O = %v", io.Total())
	}
	// One merge pass: write runs (x), read them back (x).
	io := simSort(1000, 100)
	if io.Writes != 1000 || io.Reads != 1000 {
		t.Errorf("single-pass sort = %+v", io)
	}
	// Tiny memory: multiple passes, strictly more I/O.
	io2 := simSort(1000, 5)
	if io2.Total() <= io.Total() {
		t.Errorf("multi-pass sort %v not above single-pass %v", io2.Total(), io.Total())
	}
}

func TestSimJoinShapes(t *testing.T) {
	mk := func(m cost.Method) *plan.Join {
		return &plan.Join{Left: scanOf("a", 0, 1000), Right: scanOf("b", 1, 400), Method: m,
			Pages: 30, Rows: 300}
	}
	// Sort-merge with plenty of memory: both inputs sorted in memory and
	// streamed — no I/O beyond the scans.
	if io := simJoin(mk(cost.SortMerge), 5000); io.Total() != 0 {
		t.Errorf("SM rich = %+v", io)
	}
	// Sort-merge with tight memory pays run formation and read-back for
	// both inputs: (1000 + 400) written and read once each.
	ioTight := simJoin(mk(cost.SortMerge), 50)
	if ioTight.Writes != 1400 || ioTight.Reads != 1400 {
		t.Errorf("SM tight = %+v, want 1400w/1400r", ioTight)
	}
	// Grace hash: fits → free beyond scans; doesn't fit → partition I/O.
	if io := simJoin(mk(cost.GraceHash), 500); io.Total() != 0 {
		t.Errorf("GH fitting = %+v", io)
	}
	if io := simJoin(mk(cost.GraceHash), 50); io.Total() != 2*1400 {
		t.Errorf("GH one level = %v, want 2800", io.Total())
	}
	// Nested loop: fits → free; not → rescans.
	if io := simJoin(mk(cost.NestedLoop), 402); io.Total() != 0 {
		t.Errorf("NL fitting = %+v", io)
	}
	if io := simJoin(mk(cost.NestedLoop), 100); io.Reads != 999*400 {
		t.Errorf("NL rescans = %v", io.Reads)
	}
	// Block NL: block rescans.
	if io := simJoin(mk(cost.BlockNL), 102); io.Reads != 9*400 {
		t.Errorf("BNL = %v, want 3600", io.Reads)
	}
	if io := simJoin(mk(cost.BlockNL), 5000); io.Total() != 0 {
		t.Errorf("BNL fitting = %+v", io)
	}
}

// TestSimulatorMonotoneInMemory: more memory never increases simulated I/O.
func TestSimulatorMonotoneInMemory(t *testing.T) {
	for _, m := range cost.Methods() {
		j := &plan.Join{Left: scanOf("a", 0, 2000), Right: scanOf("b", 1, 800), Method: m, Pages: 40, Rows: 400}
		prev := math.Inf(1)
		for mem := 2.0; mem < 5000; mem *= 1.5 {
			io, err := Run(j, Trace{mem})
			if err != nil {
				t.Fatal(err)
			}
			if io.Total() > prev+1e-9 {
				t.Errorf("%v: I/O rose from %v to %v at mem=%v", m, prev, io.Total(), mem)
			}
			prev = io.Total()
		}
	}
}

// TestSimulatorTracksCostModelOnExample11: on the paper's example the
// simulator must agree with the cost model about which plan is better in
// each memory regime (shape agreement, not equality).
func TestSimulatorTracksCostModelOnExample11(t *testing.T) {
	cat, q, _ := workload.Example11()
	plan1, err := opt.SystemR(cat, q, opt.Options{}, 2000) // sort-merge
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := opt.SystemR(cat, q, opt.Options{}, 700) // grace hash + sort
	if err != nil {
		t.Fatal(err)
	}
	for _, mem := range []float64{700, 2000} {
		io1, err := Run(plan1.Plan, Trace{mem})
		if err != nil {
			t.Fatal(err)
		}
		io2, err := Run(plan2.Plan, Trace{mem})
		if err != nil {
			t.Fatal(err)
		}
		c1, c2 := plan.Cost(plan1.Plan, mem), plan.Cost(plan2.Plan, mem)
		simPref := io1.Total() < io2.Total()
		modelPref := c1 < c2
		if simPref != modelPref {
			t.Errorf("at mem=%v: simulator prefers plan%d, model prefers plan%d (sim %v/%v, model %v/%v)",
				mem, pick(simPref), pick(modelPref), io1.Total(), io2.Total(), c1, c2)
		}
	}
}

func pick(firstWins bool) int {
	if firstWins {
		return 1
	}
	return 2
}

// TestLECBeatsLSCInSimulation is the headline end-to-end check: across many
// simulated executions under the Example 1.1 memory distribution, the LEC
// plan's *realized average cost* is lower than the LSC plan's.
func TestLECBeatsLSCInSimulation(t *testing.T) {
	cat, q, dm := workload.Example11()
	lsc, err := opt.LSCPlan(cat, q, opt.Options{}, dm, true)
	if err != nil {
		t.Fatal(err)
	}
	lec, err := opt.AlgorithmC(cat, q, opt.Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	sampler := StaticSampler{Dist: dm}
	sLSC, err := Evaluate(lsc.Plan, sampler, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	sLEC, err := Evaluate(lec.Plan, sampler, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sLEC.Mean >= sLSC.Mean {
		t.Errorf("simulated E[LEC] = %v not below E[LSC] = %v", sLEC.Mean, sLSC.Mean)
	}
	// The LEC plan's realized cost is also far less variable.
	if sLEC.StdDev >= sLSC.StdDev {
		t.Errorf("LEC std %v not below LSC std %v", sLEC.StdDev, sLSC.StdDev)
	}
	if sLSC.Min >= sLSC.Max {
		t.Errorf("LSC plan cost should vary across trials: min %v max %v", sLSC.Min, sLSC.Max)
	}
}

func TestEvaluateValidation(t *testing.T) {
	p := scanOf("t", 0, 10)
	if _, err := Evaluate(p, StaticSampler{Dist: stats.Point(10)}, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero trials accepted")
	}
	s, err := Evaluate(p, StaticSampler{Dist: stats.Point(10)}, 5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 10 || s.StdDev != 0 || s.Min != 10 || s.Max != 10 || s.Trials != 5 {
		t.Errorf("scan summary = %+v", s)
	}
}

func TestWalkSampler(t *testing.T) {
	chain, err := stats.RandomWalkChain([]float64{100, 200, 400}, 0.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	s := WalkSampler{Chain: chain, Initial: stats.Point(200)}
	rng := rand.New(rand.NewSource(4))
	tr := s.Sample(rng, 5)
	if len(tr) != 5 {
		t.Fatalf("trace length %d", len(tr))
	}
	if tr[0] != 200 {
		t.Errorf("trace starts at %v", tr[0])
	}
	for i := 1; i < len(tr); i++ {
		ratio := tr[i] / tr[i-1]
		if ratio != 1 && ratio != 2 && ratio != 0.5 {
			t.Errorf("illegal transition %v -> %v", tr[i-1], tr[i])
		}
	}
	if got := s.Sample(rng, 0); len(got) != 1 {
		t.Errorf("zero-phase sample length %d", len(got))
	}
}

// TestDynamicTraceChangesRealizedCost: a join executing in a late phase
// under a decaying memory walk costs more on average than under a static
// rich environment — the effect §3.5 models.
func TestDynamicTraceChangesRealizedCost(t *testing.T) {
	// Two joins: the second executes in phase 1 where memory has decayed.
	a, b, c := scanOf("a", 0, 10000), scanOf("b", 1, 5000), scanOf("c", 2, 4000)
	j1 := &plan.Join{Left: a, Right: b, Method: cost.SortMerge, Pages: 5000, Rows: 50000}
	j2 := &plan.Join{Left: j1, Right: c, Method: cost.SortMerge, Pages: 100, Rows: 1000}

	rng := rand.New(rand.NewSource(8))
	decay, err := stats.RandomWalkChain([]float64{10, 4000}, 0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	rich, err := Evaluate(j2, StaticSampler{Dist: stats.Point(4000)}, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	decaying, err := Evaluate(j2, WalkSampler{Chain: decay, Initial: stats.Point(4000)}, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	if decaying.Mean <= rich.Mean {
		t.Errorf("decaying memory mean %v not above static-rich %v", decaying.Mean, rich.Mean)
	}
}
