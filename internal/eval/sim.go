// Package eval simulates plan execution at the page-I/O level. It is the
// stand-in for the paper's real execution environment: given a plan and a
// per-phase memory trace, it procedurally replays what each operator would
// do — run formation and merge passes for sorts, recursive partitioning for
// Grace hash, inner rescans for nested loops — and counts the page reads
// and writes.
//
// The simulator deliberately refines the optimizer's three-case formulas:
// it computes actual pass counts from run counts and merge fan-in rather
// than the √-threshold approximation. Experiments that compare LEC and LSC
// plans under this model therefore test that optimizing with the coarse
// formulas still wins when execution follows the detailed behavior — a
// stricter claim than replaying the cost model against itself.
package eval

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/stats"
)

// Trace is the per-phase memory availability during one execution: entry k
// is the buffer size (pages) during join phase k. Shorter traces extend
// with their last value.
type Trace []float64

// at returns the memory for phase i.
func (tr Trace) at(i int) float64 {
	if len(tr) == 0 {
		return 1
	}
	if i < 0 {
		i = 0
	}
	if i >= len(tr) {
		i = len(tr) - 1
	}
	m := tr[i]
	if m < 1 {
		m = 1
	}
	return m
}

// IOStats aggregates the simulated I/O of one execution.
type IOStats struct {
	Reads  float64
	Writes float64
}

// Total returns reads + writes — the simulated execution cost.
func (s IOStats) Total() float64 { return s.Reads + s.Writes }

func (s *IOStats) add(o IOStats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
}

// Run simulates executing the plan under the memory trace and returns the
// I/O counts. Each join is one phase (post-order, matching
// plan.CostPhased); the final sort runs in the last phase.
func Run(n plan.Node, tr Trace) (IOStats, error) {
	var total IOStats
	joinIdx := 0
	var err error
	plan.Walk(n, func(m plan.Node) {
		if err != nil {
			return
		}
		switch v := m.(type) {
		case *plan.Scan:
			total.add(simScan(v))
		case *plan.Join:
			total.add(simJoin(v, tr.at(joinIdx)))
			joinIdx++
		case *plan.Sort:
			if !plan.SatisfiesOrder(v.Input, v.Key_) {
				total.add(simSort(v.Input.OutPages(), tr.at(joinIdx-1)))
			}
		case *plan.Aggregate:
			total.add(simAggregate(v, tr.at(joinIdx-1)))
		default:
			err = fmt.Errorf("eval: unknown node type %T", m)
		}
	})
	return total, err
}

// simAggregate replays aggregation: hash aggregation spills one partition
// round when the group table exceeds memory; sort aggregation externally
// sorts an unsorted input.
func simAggregate(a *plan.Aggregate, mem float64) IOStats {
	if a.Method == plan.HashAgg {
		if a.Pages <= mem-2 {
			return IOStats{}
		}
		in := a.Input.OutPages()
		return IOStats{Reads: in, Writes: in}
	}
	if a.InputSorted() {
		return IOStats{}
	}
	return simSort(a.Input.OutPages(), mem)
}

func simScan(s *plan.Scan) IOStats {
	if s.Method == plan.IndexScan {
		return IOStats{Reads: s.AccessCost()}
	}
	return IOStats{Reads: s.BasePages}
}

func simJoin(j *plan.Join, mem float64) IOStats {
	a, b := j.Left.OutPages(), j.Right.OutPages()
	switch j.Method {
	case cost.SortMerge:
		// Each input is externally sorted; simSort's final merge pass is
		// the read that streams into the join, so no further I/O is charged
		// here. (An input that fits in memory flows straight from its
		// producer through an in-memory sort.)
		io := simSort(a, mem)
		io.add(simSort(b, mem))
		return io
	case cost.GraceHash:
		return simGraceHash(a, b, mem)
	case cost.NestedLoop:
		return simNestedLoop(a, b, mem)
	case cost.BlockNL:
		return simBlockNL(a, b, mem)
	default:
		return IOStats{}
	}
}

// simSort replays an external merge sort of x pages: run formation writes
// the runs, each merge pass reads and writes everything, and the final pass
// streams into the consumer. In-memory sorts are free (the data is already
// flowing through the operator).
func simSort(x, mem float64) IOStats {
	if x <= mem || x <= 0 {
		return IOStats{}
	}
	runs := math.Ceil(x / mem)
	fanin := mem - 1
	if fanin < 2 {
		fanin = 2
	}
	passes := math.Ceil(math.Log(runs) / math.Log(fanin))
	if passes < 1 {
		passes = 1
	}
	// Run formation: write all runs. Then passes-1 full read+write merge
	// passes; the final merge pass reads only (streams to the consumer).
	return IOStats{
		Writes: x + (passes-1)*x,
		Reads:  passes * x,
	}
}

// simGraceHash replays recursive Grace hash partitioning: each level reads
// both inputs and writes the partitions; recursion continues until the
// build side fits. The final probe level reads both once more.
func simGraceHash(a, b, mem float64) IOStats {
	small := math.Min(a, b)
	var io IOStats
	levels := 0.0
	for small > mem && levels < 8 {
		// One partitioning level: write both inputs as partitions, then
		// they are re-read at the next level (or at probe time).
		io.Writes += a + b
		io.Reads += a + b
		fanout := mem - 1
		if fanout < 2 {
			fanout = 2
		}
		small = math.Ceil(small / fanout)
		levels++
	}
	// Build + probe of (possibly partitioned) inputs: already read above at
	// the last level; when no partitioning was needed the inputs arrived
	// from the scans, so no extra I/O.
	return io
}

// simNestedLoop replays the paper's page nested loop: when the smaller
// input does not fit, the inner is rescanned once per outer page beyond the
// first pass.
func simNestedLoop(a, b, mem float64) IOStats {
	small := math.Min(a, b)
	if mem >= small+2 {
		return IOStats{}
	}
	// a is the outer: rescans of the inner. The first read came from the
	// scan below.
	rescans := a - 1
	if rescans < 0 {
		rescans = 0
	}
	return IOStats{Reads: rescans * b}
}

// simBlockNL rescans the inner once per outer block beyond the first.
func simBlockNL(a, b, mem float64) IOStats {
	block := mem - 2
	if block < 1 {
		block = 1
	}
	blocks := math.Ceil(a / block)
	if blocks <= 1 {
		return IOStats{}
	}
	return IOStats{Reads: (blocks - 1) * b}
}

// Sampler produces memory traces for simulated executions.
type Sampler interface {
	// Sample returns a trace with at least `phases` entries.
	Sample(rng *rand.Rand, phases int) Trace
}

// StaticSampler draws one memory value per execution and holds it constant
// — the paper's static-parameter model.
type StaticSampler struct{ Dist *stats.Dist }

// Sample implements Sampler.
func (s StaticSampler) Sample(rng *rand.Rand, phases int) Trace {
	return Trace{s.Dist.Sample(rng)}
}

// WalkSampler draws a Markov trajectory — the §3.5 dynamic model.
type WalkSampler struct {
	Chain   *stats.Chain
	Initial *stats.Dist
}

// Sample implements Sampler.
func (s WalkSampler) Sample(rng *rand.Rand, phases int) Trace {
	if phases < 1 {
		phases = 1
	}
	return Trace(s.Chain.SamplePath(rng, s.Initial, phases))
}

// Summary reports the outcome of repeated simulated executions.
type Summary struct {
	Trials int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Evaluate executes the plan `trials` times with independently sampled
// traces and summarizes the realized costs — the "average across a large
// number of evaluations" of the paper's Example 1.1 argument.
func Evaluate(p plan.Node, sampler Sampler, trials int, rng *rand.Rand) (Summary, error) {
	if trials <= 0 {
		return Summary{}, fmt.Errorf("eval: trials must be positive")
	}
	phases := plan.NumJoins(p)
	if phases < 1 {
		phases = 1
	}
	sum, sumSq := 0.0, 0.0
	mn, mx := math.Inf(1), math.Inf(-1)
	for i := 0; i < trials; i++ {
		tr := sampler.Sample(rng, phases)
		io, err := Run(p, tr)
		if err != nil {
			return Summary{}, err
		}
		c := io.Total()
		sum += c
		sumSq += c * c
		mn = math.Min(mn, c)
		mx = math.Max(mx, c)
	}
	mean := sum / float64(trials)
	variance := sumSq/float64(trials) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		Trials: trials,
		Mean:   mean,
		StdDev: math.Sqrt(variance),
		Min:    mn,
		Max:    mx,
	}, nil
}
