package eval

import (
	"fmt"

	"repro/internal/plan"
)

// RunPhases simulates the plan like Run but returns the I/O broken down by
// execution phase: element k is the I/O performed during join phase k
// (including the scans whose data is first read in that phase, and the
// final sort in the last phase). Summing the phases equals Run's total.
// Phase attribution follows execution order of left-deep plans; bushy plans
// are rejected because their subtrees have no single phase order.
func RunPhases(n plan.Node, tr Trace) ([]IOStats, error) {
	joins := plan.NumJoins(n)
	if joins == 0 {
		io, err := Run(n, tr)
		if err != nil {
			return nil, err
		}
		return []IOStats{io}, nil
	}
	phases := make([]IOStats, joins)
	joinIdx := 0
	var err error
	plan.Walk(n, func(m plan.Node) {
		if err != nil {
			return
		}
		switch v := m.(type) {
		case *plan.Scan:
			k := joinIdx
			if k >= joins {
				k = joins - 1
			}
			phases[k].add(simScan(v))
		case *plan.Join:
			if _, bushy := v.Right.(*plan.Join); bushy {
				err = fmt.Errorf("eval: RunPhases requires a left-deep plan")
				return
			}
			if _, bushy := v.Right.(*plan.Sort); bushy {
				err = fmt.Errorf("eval: RunPhases requires a left-deep plan")
				return
			}
			phases[joinIdx].add(simJoin(v, tr.at(joinIdx)))
			joinIdx++
		case *plan.Sort:
			if !plan.SatisfiesOrder(v.Input, v.Key_) {
				phases[joins-1].add(simSort(v.Input.OutPages(), tr.at(joinIdx-1)))
			}
		default:
			err = fmt.Errorf("eval: unknown node type %T", m)
		}
	})
	if err != nil {
		return nil, err
	}
	return phases, nil
}
