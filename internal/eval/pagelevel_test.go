package eval

import (
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/workload"
)

// scaledExample11 is Example 1.1 shrunk 100×, preserving the regime
// structure: A = 10,000 pages (√A = 100), B = 4000 pages (√B ≈ 63), memory
// 200 pages 80% of the time and 70 pages 20% — the 70-page case sits
// between the two √ thresholds exactly like the paper's 700.
func scaledExample11() (*catalog.Catalog, *query.SPJ, *stats.Dist) {
	const rowsPerPage = 10.0
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{
		Name: "A", Rows: 100_000, Pages: 10_000,
		Columns: []*catalog.Column{{Name: "k", Distinct: 100_000, Min: 1, Max: 100_000}},
	})
	cat.MustAdd(&catalog.Table{
		Name: "B", Rows: 40_000, Pages: 4_000,
		Columns: []*catalog.Column{{Name: "k", Distinct: 40_000, Min: 1, Max: 40_000}},
	})
	resultRows := 30.0 / (2 / rowsPerPage) // 30-page result
	sel := resultRows / (100_000.0 * 40_000.0)
	ob := query.ColumnRef{Table: "A", Column: "k"}
	q := &query.SPJ{
		Tables: []string{"A", "B"},
		Joins: []query.JoinPred{{
			Left:        query.ColumnRef{Table: "A", Column: "k"},
			Right:       query.ColumnRef{Table: "B", Column: "k"},
			Selectivity: sel,
		}},
		OrderBy: &ob,
	}
	return cat, q, stats.MustNew([]float64{70, 200}, []float64{0.2, 0.8})
}

func TestRunPageLevelSmoke(t *testing.T) {
	cat, q, _ := scaledExample11()
	res, err := opt.SystemR(cat, q, opt.Options{}, 200)
	if err != nil {
		t.Fatal(err)
	}
	io, err := RunPageLevel(res.Plan, Trace{200})
	if err != nil {
		t.Fatal(err)
	}
	if io.Total() <= 0 {
		t.Errorf("total I/O %v", io.Total())
	}
	// More memory never costs more at the page level either.
	ioRich, err := RunPageLevel(res.Plan, Trace{100000})
	if err != nil {
		t.Fatal(err)
	}
	if ioRich.Total() > io.Total() {
		t.Errorf("richer memory cost more: %v vs %v", ioRich.Total(), io.Total())
	}
}

// TestLECBeatsLSCAtPageLevel is the deepest end-to-end validation: the LEC
// plan's advantage on the (scaled) Example 1.1 survives the page-level LRU
// replay, a model three layers removed from the formulas the optimizer
// used. The memory distribution has two points, so the expectation is
// computed exactly with one replay per point.
func TestLECBeatsLSCAtPageLevel(t *testing.T) {
	cat, q, dm := scaledExample11()
	lsc, err := opt.LSCPlan(cat, q, opt.Options{}, dm, true)
	if err != nil {
		t.Fatal(err)
	}
	lec, err := opt.AlgorithmC(cat, q, opt.Options{}, dm)
	if err != nil {
		t.Fatal(err)
	}
	if lsc.Plan.Key() == lec.Plan.Key() {
		t.Fatal("scaled fixture lost the plan split")
	}
	meanOf := func(p plan.Node) float64 {
		sum := 0.0
		for i := 0; i < dm.Len(); i++ {
			io, err := RunPageLevel(p, Trace{dm.Value(i)})
			if err != nil {
				t.Fatal(err)
			}
			sum += dm.Prob(i) * io.Total()
		}
		return sum
	}
	mLSC, mLEC := meanOf(lsc.Plan), meanOf(lec.Plan)
	if mLEC >= mLSC {
		t.Errorf("page-level mean: LEC %v not below LSC %v", mLEC, mLSC)
	}
	t.Logf("page-level replay: LSC %v, LEC %v (%.1f%% saving)", mLSC, mLEC, 100*(1-mLEC/mLSC))
}

func TestRunPageLevelRejectsBushy(t *testing.T) {
	cat, q, _ := scaledExample11()
	res, err := opt.BushyAlgorithmC(cat, q, opt.Options{}, stats.Point(2000))
	if err != nil {
		t.Fatal(err)
	}
	inner := res.Plan
	for {
		if s, ok := inner.(*plan.Sort); ok {
			inner = s.Input
			continue
		}
		break
	}
	j := inner.(*plan.Join)
	bushy := &plan.Join{Left: j.Left, Right: j, Method: j.Method, Pages: 10, Rows: 10}
	if _, err := RunPageLevel(bushy, Trace{100}); err == nil {
		t.Error("bushy plan accepted")
	}
}

func TestRunPageLevelMultiJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cat := workload.RandomCatalog(rng, workload.CatalogSpec{NumTables: 4, MinPages: 50, MaxPages: 5000})
	q, err := workload.RandomQuery(rng, cat, workload.QuerySpec{NumRels: 4, Shape: workload.Chain, OrderBy: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.AlgorithmC(cat, q, opt.Options{}, stats.MustNew([]float64{50, 2000}, []float64{0.5, 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	io, err := RunPageLevel(res.Plan, Trace{2000, 50, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if io.Total() <= 0 {
		t.Errorf("total %v", io.Total())
	}
}
