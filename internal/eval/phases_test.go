package eval

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/query"
)

func TestRunPhasesDecomposition(t *testing.T) {
	a, b, c := scanOf("a", 0, 10000), scanOf("b", 1, 4000), scanOf("c", 2, 500)
	j1 := &plan.Join{Left: a, Right: b, Method: cost.SortMerge, Pages: 800, Rows: 8000}
	j2 := &plan.Join{Left: j1, Right: c, Method: cost.GraceHash, Pages: 100, Rows: 1000}
	s := &plan.Sort{Input: j2, Key_: query.ColumnRef{Table: "a", Column: "k"}}
	tr := Trace{100, 40}
	phases, err := RunPhases(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 2 {
		t.Fatalf("%d phases", len(phases))
	}
	// Phase 0 holds both initial scans plus join 0; phase 1 holds scan c,
	// join 1, and the final sort.
	total, err := Run(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := phases[0].Total() + phases[1].Total(); got != total.Total() {
		t.Errorf("phase sum %v != total %v", got, total.Total())
	}
	if phases[0].Reads < 14000 {
		t.Errorf("phase 0 should include both initial scans: %+v", phases[0])
	}
	if phases[1].Reads < 500 {
		t.Errorf("phase 1 should include scan c: %+v", phases[1])
	}
}

func TestRunPhasesNoJoins(t *testing.T) {
	s := scanOf("t", 0, 77)
	phases, err := RunPhases(s, Trace{10})
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 || phases[0].Total() != 77 {
		t.Errorf("phases = %+v", phases)
	}
}

func TestRunPhasesRejectsRightJoinChild(t *testing.T) {
	a, b, c := scanOf("a", 0, 100), scanOf("b", 1, 100), scanOf("c", 2, 100)
	inner := &plan.Join{Left: b, Right: c, Method: cost.GraceHash, Pages: 10, Rows: 100}
	bushy := &plan.Join{Left: a, Right: inner, Method: cost.GraceHash, Pages: 10, Rows: 100}
	if _, err := RunPhases(bushy, Trace{100}); err == nil {
		t.Error("bushy plan accepted")
	}
}
