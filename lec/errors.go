package lec

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/opt"
)

// The package's error taxonomy. Every error returned by a public entry point
// either is one of these sentinels (test with errors.Is) or is a plain
// validation error from a layer below; panics inside the optimizer never
// escape — they surface as ErrInternal.
var (
	// ErrInvalidDistribution reports an unusable parameter distribution in
	// the Environment: nil, empty, unnormalized, or with non-positive or
	// non-finite memory values.
	ErrInvalidDistribution = errors.New("lec: invalid parameter distribution")
	// ErrUnknownRelation reports a query referencing a table or column the
	// catalog does not know.
	ErrUnknownRelation = errors.New("lec: unknown relation or column")
	// ErrInvalidQuery reports a malformed query: unparsable SQL, a bad
	// alias, an out-of-range selectivity, an empty FROM list.
	ErrInvalidQuery = errors.New("lec: invalid query")
	// ErrBudgetExhausted reports an optimization interrupted by its work
	// budget or context deadline for which not even the fallback ladder
	// could produce a plan. When a degraded plan IS available, Optimize
	// returns it with Decision.Degraded set instead of this error.
	ErrBudgetExhausted = errors.New("lec: optimization budget exhausted")
	// ErrInternal reports an optimizer-side failure: a recovered panic or a
	// cost model poisoning every candidate with NaN/±Inf.
	ErrInternal = errors.New("lec: internal optimizer error")
)

// classifyErr maps lower-layer errors onto the package taxonomy. Sentinels
// are attached with %w so both the taxonomy and the original chain stay
// errors.Is-able (e.g. a deadline error matches ErrBudgetExhausted and
// context.DeadlineExceeded).
func classifyErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrInvalidDistribution) || errors.Is(err, ErrUnknownRelation) ||
		errors.Is(err, ErrInvalidQuery) || errors.Is(err, ErrBudgetExhausted) || errors.Is(err, ErrInternal) {
		return err
	}
	if errors.Is(err, opt.ErrBudgetExhausted) {
		return fmt.Errorf("%w: %w", ErrBudgetExhausted, err)
	}
	if errors.Is(err, opt.ErrNonFinite) {
		return fmt.Errorf("%w: %w", ErrInternal, err)
	}
	if _, ok := opt.RecoveredPanic(err); ok {
		return fmt.Errorf("%w: %w", ErrInternal, err)
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "cancelled") || strings.Contains(msg, "context deadline") || strings.Contains(msg, "context canceled"):
		// An interrupted search whose fallback also failed.
		return fmt.Errorf("%w: %w", ErrBudgetExhausted, err)
	case strings.Contains(msg, "unknown table") || strings.Contains(msg, "unknown column") ||
		strings.Contains(msg, "no table") || strings.Contains(msg, "unknown group column"):
		return fmt.Errorf("%w: %w", ErrUnknownRelation, err)
	case strings.HasPrefix(msg, "query:") || strings.HasPrefix(msg, "sqlparse:") ||
		strings.Contains(msg, "empty query"):
		return fmt.Errorf("%w: %w", ErrInvalidQuery, err)
	}
	return err
}

// recoverToInternal converts a panic escaping a public entry point into
// ErrInternal. Panics inside the search are already recovered by the engine
// and degrade to a fallback plan; this is the outer bulkhead for panics in
// validation, binding, risk profiling, or the facade itself.
func recoverToInternal(errp *error) {
	if p := recover(); p != nil {
		*errp = fmt.Errorf("%w: recovered panic: %v", ErrInternal, p)
	}
}

// validateEnvironment front-loads the distribution checks so garbage
// environments fail with ErrInvalidDistribution before any search runs.
func validateEnvironment(env Environment) error {
	if env.Memory == nil {
		return fmt.Errorf("%w: environment needs a memory distribution", ErrInvalidDistribution)
	}
	if err := env.Memory.Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidDistribution, err)
	}
	for i := 0; i < env.Memory.Len(); i++ {
		v := env.Memory.Value(i)
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("%w: memory value %v (values must be positive and finite)", ErrInvalidDistribution, v)
		}
	}
	return nil
}
