package lec

import (
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/stats"
	"repro/internal/workload"
)

func example11Env() (*Optimizer, string, Environment) {
	cat, _, dm := workload.Example11()
	sql := "SELECT * FROM A, B WHERE A.k = B.k ORDER BY A.k"
	return New(cat), sql, Environment{Memory: dm}
}

func TestOptimizeSQLEndToEnd(t *testing.T) {
	o, sql, env := example11Env()
	d, err := o.OptimizeSQL(sql, env)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy != AlgorithmC {
		t.Errorf("default strategy %v", d.Strategy)
	}
	// The SQL path estimates its own join selectivity (1/max distinct), so
	// the chosen method can differ from the hand-built fixture; what must
	// hold is that AlgorithmC's expected cost is minimal among all
	// strategies for the same bound query, and that the ORDER BY is
	// satisfied.
	if d.ExpectedCost <= 0 {
		t.Errorf("expected cost %v", d.ExpectedCost)
	}
	ds, err := o.Compare(d.Query, env)
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range ds {
		if other.Strategy == AlgorithmD {
			continue // D optimizes a different (distribution-aware) objective
		}
		if d.ExpectedCost > other.ExpectedCost*(1+1e-9) {
			t.Errorf("AlgorithmC (%.0f) worse than %v (%.0f)", d.ExpectedCost, other.Strategy, other.ExpectedCost)
		}
	}
	if d.Query.OrderBy == nil || !plan.SatisfiesOrder(d.Plan, *d.Query.OrderBy) {
		t.Errorf("ORDER BY not satisfied:\n%s", d.Explain())
	}
	out := d.Explain()
	for _, want := range []string{"algorithm-c", "expected cost", "join"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	if got := d.CostAt(2000); got <= 0 {
		t.Errorf("CostAt = %v", got)
	}
}

func TestCompareOrdersStrategiesCorrectly(t *testing.T) {
	cat, q, dm := workload.Example11()
	o := New(cat)
	ds, err := o.Compare(q, Environment{Memory: dm})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != len(Strategies()) {
		t.Fatalf("%d decisions", len(ds))
	}
	byStrategy := map[Strategy]*Decision{}
	for _, d := range ds {
		byStrategy[d.Strategy] = d
	}
	// On Example 1.1 the LEC strategies beat both LSC variants.
	for _, lsc := range []Strategy{LSCMean, LSCMode} {
		for _, lec := range []Strategy{AlgorithmA, AlgorithmB, AlgorithmC, AlgorithmD} {
			if byStrategy[lec].ExpectedCost >= byStrategy[lsc].ExpectedCost {
				t.Errorf("%v (%.0f) not better than %v (%.0f)",
					lec, byStrategy[lec].ExpectedCost, lsc, byStrategy[lsc].ExpectedCost)
			}
		}
	}
	// A, B, C, D agree on this instance.
	if byStrategy[AlgorithmC].ExpectedCost != byStrategy[AlgorithmA].ExpectedCost {
		t.Errorf("A and C disagree: %v vs %v",
			byStrategy[AlgorithmA].ExpectedCost, byStrategy[AlgorithmC].ExpectedCost)
	}
}

func TestDynamicEnvironment(t *testing.T) {
	cat, q, dm := workload.Example11()
	chain := stats.IdentityChain(dm.Support())
	o := New(cat)
	dynamic, err := o.Optimize(q, Environment{Memory: dm, Chain: chain}, AlgorithmC)
	if err != nil {
		t.Fatal(err)
	}
	static, err := o.Optimize(q, Environment{Memory: dm}, AlgorithmC)
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.ExpectedCost != static.ExpectedCost {
		t.Errorf("identity chain changed expected cost: %v vs %v",
			dynamic.ExpectedCost, static.ExpectedCost)
	}
}

func TestEnvironmentValidation(t *testing.T) {
	o, sql, _ := example11Env()
	if _, err := o.OptimizeSQL(sql, Environment{}); err == nil {
		t.Error("missing memory distribution accepted")
	}
	if _, err := o.OptimizeSQLWith(sql, Environment{Memory: stats.Point(100)}, Strategy(99)); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := o.OptimizeSQL("this is not sql", Environment{Memory: stats.Point(100)}); err == nil {
		t.Error("garbage SQL accepted")
	}
}

func TestStrategyStrings(t *testing.T) {
	for _, s := range append(Strategies(), Strategy(99)) {
		if s.String() == "" {
			t.Errorf("empty string for strategy %d", int(s))
		}
	}
}

func TestNewWithOptionsRestrictsMethods(t *testing.T) {
	cat, q, dm := workload.Example11()
	o := NewWithOptions(cat, opt.Options{Methods: []cost.Method{cost.SortMerge}})
	d, err := o.Optimize(q, Environment{Memory: dm}, AlgorithmC)
	if err != nil {
		t.Fatal(err)
	}
	plan.Walk(d.Plan, func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok && j.Method != cost.SortMerge {
			t.Errorf("restricted optimizer used %v", j.Method)
		}
	})
	if o.Catalog() != cat {
		t.Error("Catalog accessor wrong")
	}
}

func TestGroupByThroughFacade(t *testing.T) {
	cat, q, dm := workload.Example11()
	gb := q.Joins[0].Left // A.k
	q2 := *q
	q2.GroupBy = &gb
	ob := gb
	q2.OrderBy = &ob
	o := New(cat)
	env := Environment{Memory: dm}
	d, err := o.Optimize(&q2, env, AlgorithmC)
	if err != nil {
		t.Fatal(err)
	}
	hasAgg := false
	plan.Walk(d.Plan, func(n plan.Node) {
		if _, ok := n.(*plan.Aggregate); ok {
			hasAgg = true
		}
	})
	if !hasAgg {
		t.Errorf("no aggregate in plan:\n%s", d.Explain())
	}
	if d.ExpectedCost <= 0 {
		t.Errorf("expected cost %v", d.ExpectedCost)
	}
	// LSC strategies route through the point-estimate path.
	lsc, err := o.Optimize(&q2, env, LSCMode)
	if err != nil {
		t.Fatal(err)
	}
	if d.ExpectedCost > lsc.ExpectedCost*(1+1e-9) {
		t.Errorf("LEC agg %v worse than LSC agg %v", d.ExpectedCost, lsc.ExpectedCost)
	}
	// SQL round trip with GROUP BY.
	sqlQ, err := o.OptimizeSQLWith(
		"SELECT A.k FROM A, B WHERE A.k = B.k GROUP BY A.k ORDER BY A.k", env, AlgorithmC)
	if err != nil {
		t.Fatal(err)
	}
	if sqlQ.Query.GroupBy == nil {
		t.Error("SQL GROUP BY lost")
	}
}
