package lec_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/workload"
	"repro/lec"
)

// TestOptimizeConcurrent exercises the documented concurrency contract: one
// Optimizer, many goroutines, mixed entry points, no shared mutable state.
// Run under -race (the repo's race target includes ./lec) it proves each
// call really is its own session; the cost assertions prove concurrent runs
// do not bleed into each other's results.
func TestOptimizeConcurrent(t *testing.T) {
	cat, q, dm := workload.Example11()
	o := lec.New(cat)
	env := lec.Environment{Memory: dm}

	// Sequential baselines to compare every concurrent result against.
	want := make(map[lec.Strategy]float64)
	for _, s := range lec.Strategies() {
		d, err := o.Optimize(q, env, s)
		if err != nil {
			t.Fatal(err)
		}
		want[s] = d.ExpectedCost
	}

	const rounds = 8
	var wg sync.WaitGroup
	ctx := context.Background()
	for r := 0; r < rounds; r++ {
		for _, s := range lec.Strategies() {
			wg.Add(1)
			go func(s lec.Strategy) {
				defer wg.Done()
				d, err := o.OptimizeContext(ctx, q, env, s)
				if err != nil {
					t.Errorf("%v: %v", s, err)
					return
				}
				if d.ExpectedCost != want[s] {
					t.Errorf("%v: concurrent cost %v != sequential %v", s, d.ExpectedCost, want[s])
				}
			}(s)
		}
		// Mix in the other entry points: SQL binding and the side-by-side
		// comparison share the same catalog concurrently.
		wg.Add(2)
		go func() {
			defer wg.Done()
			d, err := o.OptimizeSQLWithContext(ctx, "SELECT * FROM A, B WHERE A.k = B.k", env, lec.AlgorithmC)
			if err != nil {
				t.Errorf("sql: %v", err)
				return
			}
			if d.Plan == nil {
				t.Error("sql: nil plan")
			}
		}()
		go func() {
			defer wg.Done()
			ds, err := o.CompareContext(ctx, q, env)
			if err != nil {
				t.Errorf("compare: %v", err)
				return
			}
			for _, d := range ds {
				if d.ExpectedCost != want[d.Strategy] {
					t.Errorf("compare %v: concurrent cost %v != sequential %v", d.Strategy, d.ExpectedCost, want[d.Strategy])
				}
			}
		}()
	}
	wg.Wait()
}
