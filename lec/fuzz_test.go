package lec

// Native fuzz target for the public facade: arbitrary SQL against a fixed
// catalog and arbitrary (possibly degenerate) memory distributions must
// yield a valid Decision or a typed error — never a panic. Run via
// `make fuzz` or
//
//	go test ./lec -run '^$' -fuzz FuzzOptimize -fuzztime 10s
import (
	"context"
	"errors"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

func FuzzOptimize(f *testing.F) {
	f.Add("SELECT * FROM A, B WHERE A.k = B.k", 700.0, 0.2, 2000.0, 0.8, int64(0), uint8(4))
	f.Add("SELECT * FROM A, B WHERE A.k = B.k ORDER BY A.k", 100.0, 0.5, 100.0, 0.5, int64(20), uint8(2))
	f.Add("SELECT * FROM B", -1.0, 0.0, 0.0, 1.5, int64(1), uint8(0))
	f.Add("", 700.0, 1.0, 0.0, 0.0, int64(0), uint8(1))
	f.Add("SELECT * FROM ghost", 1e308, 0.5, 1e-308, 0.5, int64(3), uint8(3))

	cat, _, _ := workload.Example11()
	f.Fuzz(func(t *testing.T, sql string, v0, p0, v1, p1 float64, budget int64, strat uint8) {
		var dm *stats.Dist
		if d, err := stats.New([]float64{v0, v1}, []float64{p0, p1}); err == nil {
			dm = d // constructor accepted it; lec must still re-validate
		}
		if budget < 0 {
			budget = -budget
		}
		o := NewWithOptions(cat, Options{Budget: Budget{MaxCostEvals: int(budget % 1000)}})
		s := Strategy(int(strat) % len(Strategies()))
		d, err := o.OptimizeSQLWithContext(context.Background(), sql, Environment{Memory: dm}, s)
		if err != nil {
			// Every failure must be classified into the taxonomy.
			if !errors.Is(err, ErrInvalidDistribution) && !errors.Is(err, ErrUnknownRelation) &&
				!errors.Is(err, ErrInvalidQuery) && !errors.Is(err, ErrBudgetExhausted) &&
				!errors.Is(err, ErrInternal) {
				t.Fatalf("untyped error for %q: %v", sql, err)
			}
			return
		}
		if d == nil || d.Plan == nil {
			t.Fatalf("nil decision/plan with nil error for %q", sql)
		}
	})
}
