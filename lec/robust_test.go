package lec

// Robustness contract of the public API: for every strategy and search
// space, under deadline expiry, budget exhaustion, injected coster panics,
// and NaN-poisoned costs, OptimizeContext either returns a valid plan (with
// Decision.Degraded set when the search was cut short) or a typed error from
// the lec taxonomy. It never panics and never returns an untyped failure.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/workload"
)

// robustInstance builds an optimizer over a random 5-relation query, with an
// optional work budget baked into the Options.
func robustInstance(t *testing.T, seed int64, budget int) (*Optimizer, *query.SPJ, Environment) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cat := workload.RandomCatalog(rng, workload.CatalogSpec{NumTables: 5})
	q, err := workload.RandomQuery(rng, cat, workload.QuerySpec{
		NumRels: 5, Shape: workload.Topology(rng.Intn(3)), OrderBy: true, SelectionProb: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	dm := stats.MustNew([]float64{200, 900, 4000}, []float64{0.3, 0.4, 0.3})
	o := NewWithOptions(cat, Options{Budget: Budget{MaxCostEvals: budget}})
	return o, q, Environment{Memory: dm}
}

// checkDecision asserts a usable plan: covers the query, finite cost.
func checkDecision(t *testing.T, d *Decision, q *query.SPJ, label string) {
	t.Helper()
	if d == nil || d.Plan == nil {
		t.Fatalf("%s: nil decision or plan", label)
	}
	if got := d.Plan.Rels().Len(); got != q.NumRels() {
		t.Fatalf("%s: plan covers %d of %d relations", label, got, q.NumRels())
	}
	if math.IsNaN(d.ExpectedCost) {
		t.Fatalf("%s: NaN expected cost", label)
	}
}

// TestStrategyFaultMatrix is the ISSUE's acceptance grid: every strategy
// under each fault class returns a valid degraded plan or a typed error.
func TestStrategyFaultMatrix(t *testing.T) {
	faults := map[string]struct {
		budget int
		cancel bool
		rules  []faultinject.Rule
	}{
		"budget":   {budget: 10},
		"deadline": {cancel: true},
		"panic": {rules: []faultinject.Rule{
			{Site: faultinject.JoinCost, Kind: faultinject.KindPanic, After: 4}}},
		"nan": {rules: []faultinject.Rule{
			{Site: faultinject.JoinCost, Kind: faultinject.KindNaN, After: 2}}},
	}
	for fname, f := range faults {
		for _, s := range Strategies() {
			o, q, env := robustInstance(t, 9000, f.budget)
			ctx := context.Background()
			if f.cancel {
				c, cancel := context.WithCancel(ctx)
				cancel()
				ctx = c
			}
			if f.rules != nil {
				faultinject.Enable(faultinject.New(1, f.rules...))
			}
			d, err := o.OptimizeContext(ctx, q, env, s)
			faultinject.Disable()
			label := fname + "/" + s.String()
			if err != nil {
				// A typed error is an acceptable outcome only for faults that
				// can exhaust the search before any plan exists.
				if !errors.Is(err, ErrBudgetExhausted) && !errors.Is(err, ErrInternal) {
					t.Errorf("%s: untyped error %v", label, err)
				}
				continue
			}
			checkDecision(t, d, q, label)
			if fname != "nan" && !d.Degraded {
				// NaN injection may be absorbed without cutting the search
				// short; the other faults must always mark the decision.
				t.Errorf("%s: fault did not mark decision degraded", label)
			}
			if d.Degraded && d.DegradeReason == DegradeNone {
				t.Errorf("%s: degraded without a reason", label)
			}
		}
	}
}

// TestSearchSpaceFaultMatrix covers the explicit Space × fault grid through
// OptimizeSearchContext (bushy and pipelined spaces are not reachable from
// the named strategies).
func TestSearchSpaceFaultMatrix(t *testing.T) {
	for _, space := range []Space{SpaceLeftDeep, SpaceBushy, SpacePipelined} {
		for fname, budget := range map[string]int{"budget": 10, "deadline": 0} {
			o, q, env := robustInstance(t, 9001, budget)
			ctx := context.Background()
			if fname == "deadline" {
				c, cancel := context.WithCancel(ctx)
				cancel()
				ctx = c
			}
			d, err := o.OptimizeSearchContext(ctx, q, env, Search{Space: space})
			label := fname + "/" + space.String()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			checkDecision(t, d, q, label)
			if !d.Degraded {
				t.Errorf("%s: not degraded", label)
			}
		}
	}
}

// TestDynamicEnvironmentFaults: the Markov coster (§3.5 environment) under
// budget pressure must degrade, not fail.
func TestDynamicEnvironmentFaults(t *testing.T) {
	o, q, env := robustInstance(t, 9002, 10)
	chain, err := stats.RandomWalkChain(env.Memory.Support(), 0.3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	env.Chain = chain
	d, err := o.OptimizeContext(context.Background(), q, env, AlgorithmC)
	if err != nil {
		t.Fatal(err)
	}
	checkDecision(t, d, q, "markov/budget")
	if !d.Degraded || d.DegradeReason != DegradeBudget {
		t.Errorf("degraded=%v reason=%v", d.Degraded, d.DegradeReason)
	}
}

// TestCompareContextPropagatesDegradation: the side-by-side comparison must
// survive a budget that trips on every strategy.
func TestCompareContextPropagatesDegradation(t *testing.T) {
	o, q, env := robustInstance(t, 9003, 10)
	ds, err := o.CompareContext(context.Background(), q, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != len(Strategies()) {
		t.Fatalf("%d decisions for %d strategies", len(ds), len(Strategies()))
	}
	anyDegraded := false
	for _, d := range ds {
		checkDecision(t, d, q, d.Strategy.String())
		anyDegraded = anyDegraded || d.Degraded
	}
	if !anyDegraded {
		t.Error("10-eval budget degraded no strategy")
	}
}

// TestExplainMentionsDegradation: a degraded decision must say so.
func TestExplainMentionsDegradation(t *testing.T) {
	o, q, env := robustInstance(t, 9004, 10)
	d, err := o.OptimizeContext(context.Background(), q, env, AlgorithmC)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Degraded {
		t.Skip("instance finished within 10 evals")
	}
	if out := d.Explain(); !containsAll(out, "degraded") {
		t.Errorf("Explain silent about degradation:\n%s", out)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// --- error taxonomy ---

func TestInvalidDistributionTyped(t *testing.T) {
	o, q, _ := robustInstance(t, 9005, 0)
	cases := map[string]Environment{
		"nil memory": {},
		"nan value":  {Memory: rawDist([]float64{math.NaN(), 100}, []float64{0.5, 0.5})},
		"inf value":  {Memory: rawDist([]float64{100, math.Inf(1)}, []float64{0.5, 0.5})},
		"zero value": {Memory: rawDist([]float64{0, 100}, []float64{0.5, 0.5})},
	}
	for name, env := range cases {
		_, err := o.OptimizeContext(context.Background(), q, env, AlgorithmC)
		if !errors.Is(err, ErrInvalidDistribution) {
			t.Errorf("%s: err = %v, want ErrInvalidDistribution", name, err)
		}
	}
}

// rawDist builds a Dist bypassing constructor validation where possible; if
// the constructor rejects the values outright it falls back to a valid dist
// mutated through the public API surface — if neither is possible the test
// relies on validateEnvironment's per-value scan of a constructor-accepted
// dist. stats.New rejects NaN support, so use MustNew on sorted finite
// values and rely on the lec layer's independent re-validation.
func rawDist(vals, probs []float64) *stats.Dist {
	d, err := stats.New(vals, probs)
	if err != nil {
		return nil // nil Memory → ErrInvalidDistribution, same sentinel
	}
	return d
}

func TestUnknownRelationTyped(t *testing.T) {
	o, _, env := robustInstance(t, 9006, 0)
	_, err := o.OptimizeSQLContext(context.Background(), "SELECT * FROM nosuch, ghost WHERE nosuch.x = ghost.y", env)
	if !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("err = %v, want ErrUnknownRelation", err)
	}
}

func TestInvalidQueryTyped(t *testing.T) {
	o, _, env := robustInstance(t, 9007, 0)
	for _, sql := range []string{"", "not sql at all", "SELECT FROM WHERE"} {
		_, err := o.OptimizeSQLContext(context.Background(), sql, env)
		if err == nil {
			t.Errorf("%q: no error", sql)
			continue
		}
		if !errors.Is(err, ErrInvalidQuery) {
			t.Errorf("%q: err = %v, want ErrInvalidQuery", sql, err)
		}
	}
	// A nil query through the non-SQL path.
	if _, err := o.OptimizeContext(context.Background(), nil, env, AlgorithmC); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("nil query: err = %v, want ErrInvalidQuery", err)
	}
}

func TestTotalPoisoningIsInternal(t *testing.T) {
	o, q, env := robustInstance(t, 9008, 0)
	faultinject.Enable(faultinject.New(1,
		faultinject.Rule{Site: faultinject.JoinCost, Kind: faultinject.KindNaN, After: 1, Every: 1},
		faultinject.Rule{Site: faultinject.SortCost, Kind: faultinject.KindNaN, After: 1, Every: 1},
	))
	defer faultinject.Disable()
	_, err := o.OptimizeContext(context.Background(), q, env, AlgorithmC)
	if !errors.Is(err, ErrInternal) {
		t.Errorf("err = %v, want ErrInternal", err)
	}
}

// TestUnbudgetedFacadeIdentical: the context path with no budget must agree
// with the legacy entry point decision-for-decision.
func TestUnbudgetedFacadeIdentical(t *testing.T) {
	o, q, env := robustInstance(t, 9009, 0)
	for _, s := range Strategies() {
		plain, err := o.Optimize(q, env, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		ctxed, err := o.OptimizeContext(context.Background(), q, env, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if plain.Degraded || ctxed.Degraded {
			t.Fatalf("%v: unbudgeted run degraded", s)
		}
		if plain.Plan.Key() != ctxed.Plan.Key() || plain.ExpectedCost != ctxed.ExpectedCost {
			t.Errorf("%v: decisions diverge: %s %v vs %s %v", s,
				plain.Plan.Key(), plain.ExpectedCost, ctxed.Plan.Key(), ctxed.ExpectedCost)
		}
	}
}
