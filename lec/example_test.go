package lec_test

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/lec"
)

// Example reproduces the paper's Example 1.1 through the public API: the
// classical optimizer picks the sort-merge plan, the LEC optimizer picks
// Grace hash + sort, and the LEC plan is cheaper in expectation.
func Example() {
	cat, q, memory := workload.Example11()
	o := lec.New(cat)
	env := lec.Environment{Memory: memory}

	lsc, _ := o.Optimize(q, env, lec.LSCMode)
	lecPlan, _ := o.Optimize(q, env, lec.AlgorithmC)

	fmt.Printf("classical E[cost]: %.0f\n", lsc.ExpectedCost)
	fmt.Printf("LEC       E[cost]: %.0f\n", lecPlan.ExpectedCost)
	fmt.Printf("saving: %.1f%%\n", 100*(1-lecPlan.ExpectedCost/lsc.ExpectedCost))
	// Output:
	// classical E[cost]: 4760000
	// LEC       E[cost]: 4206000
	// saving: 11.6%
}

// ExampleOptimizer_OptimizeSQL shows the SQL entry point against a
// hand-built catalog.
func ExampleOptimizer_OptimizeSQL() {
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{
		Name: "t1", Rows: 1_000_000, Pages: 100_000,
		Columns: []*catalog.Column{{Name: "id", Distinct: 1_000_000}},
	})
	cat.MustAdd(&catalog.Table{
		Name: "t2", Rows: 500_000, Pages: 50_000,
		Columns: []*catalog.Column{{Name: "ref", Distinct: 1_000_000}},
	})
	o := lec.New(cat)
	env := lec.Environment{
		Memory: stats.MustNew([]float64{50, 1000}, []float64{0.5, 0.5}),
	}
	d, err := o.OptimizeSQL("SELECT * FROM t1, t2 WHERE t1.id = t2.ref", env)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("strategy: %v\n", d.Strategy)
	fmt.Printf("positive expected cost: %v\n", d.ExpectedCost > 0)
	// Output:
	// strategy: algorithm-c
	// positive expected cost: true
}

// ExampleStrategies lists the available strategies in order.
func ExampleStrategies() {
	for _, s := range lec.Strategies() {
		fmt.Println(s)
	}
	// Output:
	// lsc-mean
	// lsc-mode
	// algorithm-a
	// algorithm-b
	// algorithm-c
	// algorithm-d
}
