package lec

import (
	"fmt"
	"math/rand"

	"repro/internal/eval"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/stats"
)

// This file exposes the library's advanced capabilities through the facade:
// risk-sensitive optimization, value-of-information analysis, parametric
// (choice) plans, plan caches, and simulation.

// OptimizeRiskAverse picks a plan by exponential-utility dynamic
// programming with risk parameter gamma > 0 (larger = more risk-averse),
// under a per-phase-independent reading of the environment's memory
// distribution. Use when worst-case latency matters more than the mean;
// gamma → 0 recovers the LEC plan.
func (o *Optimizer) OptimizeRiskAverse(q *query.SPJ, env Environment, gamma float64) (*Decision, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	phases := []*stats.Dist{env.Memory}
	if env.Chain != nil {
		phases = opt.PhaseDistsFor(q, env.Chain, env.Memory)
	}
	res, err := opt.ExpUtilityDP(o.cat, q, o.opts, phases, gamma)
	if err != nil {
		return nil, err
	}
	return &Decision{
		Strategy:     AlgorithmC, // risk-adjusted variant of the LEC DP
		Plan:         res.Plan,
		ExpectedCost: o.expectedCost(res, q, env),
		Risk:         opt.NewRiskProfile(res.Plan, env.Memory),
		Query:        q,
		env:          env,
	}, nil
}

// ValueOfInformation reports how much observing the true memory value
// before planning would be worth (in page I/Os) — the [SBM93]-style
// sampling decision. Observe/probe only if doing so costs less.
func (o *Optimizer) ValueOfInformation(q *query.SPJ, env Environment) (opt.InfoValue, error) {
	if err := env.validate(); err != nil {
		return opt.InfoValue{}, err
	}
	return opt.MemoryEVPI(o.cat, q, o.opts, env.Memory)
}

// CompileChoicePlan compiles the query into a [GC94]-style choice plan:
// one artifact holding the optimal alternative per memory level set,
// resolved with the observed value at start-up.
func (o *Optimizer) CompileChoicePlan(q *query.SPJ) (*opt.ChoicePlan, error) {
	if err := q.Validate(o.cat); err != nil {
		return nil, err
	}
	return opt.BuildChoicePlan(o.cat, q, o.opts)
}

// CompilePlanCache precomputes LEC plans for several anticipated
// environment distributions; at start-up, Lookup picks the best stored
// plan for the observed distribution without re-optimizing.
func (o *Optimizer) CompilePlanCache(q *query.SPJ, seeds []*stats.Dist) (*opt.PlanCache, error) {
	if err := q.Validate(o.cat); err != nil {
		return nil, err
	}
	return opt.BuildPlanCache(o.cat, q, o.opts, seeds)
}

// SimulationReport summarizes repeated simulated executions of a decision's
// plan in its environment.
type SimulationReport struct {
	eval.Summary
}

// Simulate executes the decision's plan `trials` times in the page-I/O
// simulator, drawing memory from the environment (per-phase Markov traces
// when the environment is dynamic), and reports realized cost statistics.
func (d *Decision) Simulate(trials int, seed int64) (SimulationReport, error) {
	if trials <= 0 {
		return SimulationReport{}, fmt.Errorf("lec: trials must be positive")
	}
	var sampler eval.Sampler
	if d.env.Chain != nil {
		sampler = eval.WalkSampler{Chain: d.env.Chain, Initial: d.env.Memory}
	} else {
		sampler = eval.StaticSampler{Dist: d.env.Memory}
	}
	s, err := eval.Evaluate(d.Plan, sampler, trials, rand.New(rand.NewSource(seed)))
	if err != nil {
		return SimulationReport{}, err
	}
	return SimulationReport{Summary: s}, nil
}

// ExplainWithCosts renders the plan with a per-memory cost profile — the
// level-set view of where the plan is cheap and where it is fragile.
func (d *Decision) ExplainWithCosts() string {
	out := d.Explain()
	out += "cost profile:\n"
	for i := 0; i < d.env.Memory.Len(); i++ {
		mem := d.env.Memory.Value(i)
		out += fmt.Sprintf("  M = %6.0f pages (p=%.2f): Φ = %.0f\n",
			mem, d.env.Memory.Prob(i), plan.Cost(d.Plan, mem))
	}
	return out
}
