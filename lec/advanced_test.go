package lec

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

func TestOptimizeRiskAverse(t *testing.T) {
	cat, q, dm := workload.Example11()
	o := New(cat)
	env := Environment{Memory: dm}
	d, err := o.OptimizeRiskAverse(q, env, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// The risk-averse choice on Example 1.1 is the zero-variance Grace
	// hash plan.
	if d.Risk.Variance != 0 {
		t.Errorf("risk-averse plan has variance %v", d.Risk.Variance)
	}
	if _, err := o.OptimizeRiskAverse(q, Environment{}, 1e-6); err == nil {
		t.Error("missing memory accepted")
	}
	if _, err := o.OptimizeRiskAverse(q, env, 0); err == nil {
		t.Error("zero gamma accepted")
	}
	// Dynamic environment also works.
	env.Chain = stats.IdentityChain(dm.Support())
	if _, err := o.OptimizeRiskAverse(q, env, 1e-6); err != nil {
		t.Errorf("dynamic risk-averse: %v", err)
	}
}

func TestValueOfInformationFacade(t *testing.T) {
	cat, q, dm := workload.Example11()
	o := New(cat)
	v, err := o.ValueOfInformation(q, Environment{Memory: dm})
	if err != nil {
		t.Fatal(err)
	}
	if v.EVPI <= 0 {
		t.Errorf("EVPI = %v, want > 0 on Example 1.1", v.EVPI)
	}
	if !v.ShouldObserve(v.EVPI/2) || v.ShouldObserve(v.EVPI*2) {
		t.Error("ShouldObserve thresholds wrong")
	}
	if _, err := o.ValueOfInformation(q, Environment{}); err == nil {
		t.Error("missing memory accepted")
	}
}

func TestCompileChoicePlanFacade(t *testing.T) {
	cat, q, dm := workload.Example11()
	o := New(cat)
	cp, err := o.CompileChoicePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if cp.NumAlternatives() < 2 {
		t.Errorf("%d alternatives", cp.NumAlternatives())
	}
	ec, err := cp.ExpCost(dm)
	if err != nil || ec <= 0 {
		t.Errorf("choice ExpCost: %v, %v", ec, err)
	}
	bad := *q
	bad.Tables = []string{"ghost"}
	if _, err := o.CompileChoicePlan(&bad); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestCompilePlanCacheFacade(t *testing.T) {
	cat, q, dm := workload.Example11()
	o := New(cat)
	cache, err := o.CompilePlanCache(q, []*stats.Dist{stats.Point(700), stats.Point(2000)})
	if err != nil {
		t.Fatal(err)
	}
	p, ec := cache.Lookup(dm)
	if p == nil || ec <= 0 {
		t.Errorf("cache lookup: %v, %v", p, ec)
	}
	bad := *q
	bad.Tables = []string{"ghost"}
	if _, err := o.CompilePlanCache(&bad, []*stats.Dist{dm}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestDecisionSimulate(t *testing.T) {
	cat, q, dm := workload.Example11()
	o := New(cat)
	d, err := o.Optimize(q, Environment{Memory: dm}, AlgorithmC)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Simulate(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The LEC plan on Example 1.1 is deterministic in cost.
	if rep.StdDev != 0 || rep.Mean <= 0 {
		t.Errorf("simulation report %+v", rep)
	}
	if _, err := d.Simulate(0, 1); err == nil {
		t.Error("zero trials accepted")
	}
	// Dynamic environment path.
	env := Environment{Memory: dm, Chain: stats.IdentityChain(dm.Support())}
	dd, err := o.Optimize(q, env, AlgorithmC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dd.Simulate(100, 2); err != nil {
		t.Errorf("dynamic simulate: %v", err)
	}
}

func TestExplainWithCosts(t *testing.T) {
	cat, q, dm := workload.Example11()
	o := New(cat)
	d, err := o.Optimize(q, Environment{Memory: dm}, LSCMode)
	if err != nil {
		t.Fatal(err)
	}
	out := d.ExplainWithCosts()
	for _, want := range []string{"cost profile:", "M =    700", "M =   2000", "Φ = "} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainWithCosts missing %q:\n%s", want, out)
		}
	}
}
