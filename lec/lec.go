// Package lec is the public API of the least-expected-cost (LEC) query
// optimization library, a from-scratch reproduction of Chu, Halpern and
// Seshadri's LEC framework (PODS 1999/2002).
//
// The core idea: instead of optimizing a query for one assumed value of
// each run-time parameter (the classical least-specific-cost, LSC,
// approach), model the parameters — available buffer memory, relation
// sizes, predicate selectivities — as probability distributions and pick
// the plan minimizing *expected* cost. Because join cost formulas are
// discontinuous in memory, the two approaches can disagree dramatically;
// see the package example and examples/memory_variability.
//
// Basic use:
//
//	cat := ...                              // describe tables (catalog pkg)
//	opt := lec.New(cat)
//	env := lec.Environment{Memory: stats.MustNew([]float64{700, 2000}, []float64{0.2, 0.8})}
//	d, err := opt.OptimizeSQL("SELECT * FROM a, b WHERE a.k = b.k ORDER BY a.k", env)
//	fmt.Println(d.Explain())
package lec

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/sqlparse"
	"repro/internal/stats"
)

// Strategy selects the optimization algorithm.
type Strategy int

// Strategies, from the classical baseline to the paper's algorithms.
const (
	// LSCMean is the traditional optimizer run at the distribution's mean.
	LSCMean Strategy = iota
	// LSCMode is the traditional optimizer run at the distribution's mode.
	LSCMode
	// AlgorithmA runs the black-box optimizer once per memory bucket and
	// keeps the candidate of least expected cost (paper §3.2).
	AlgorithmA
	// AlgorithmB keeps the top-c plans per bucket before the expected-cost
	// comparison (paper §3.3).
	AlgorithmB
	// AlgorithmC is the expected-cost dynamic program — the exact LEC plan
	// (paper §3.4; §3.5 when the environment has a Markov chain).
	AlgorithmC
	// AlgorithmD additionally models relation-size and selectivity
	// distributions (paper §3.6).
	AlgorithmD
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case LSCMean:
		return "lsc-mean"
	case LSCMode:
		return "lsc-mode"
	case AlgorithmA:
		return "algorithm-a"
	case AlgorithmB:
		return "algorithm-b"
	case AlgorithmC:
		return "algorithm-c"
	case AlgorithmD:
		return "algorithm-d"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists every strategy in presentation order.
func Strategies() []Strategy {
	return []Strategy{LSCMean, LSCMode, AlgorithmA, AlgorithmB, AlgorithmC, AlgorithmD}
}

// Environment describes the run-time parameter uncertainty.
type Environment struct {
	// Memory is the distribution of available buffer pages. Required.
	Memory *stats.Dist
	// Chain, when non-nil, makes memory dynamic: it evolves between join
	// phases starting from Memory (paper §3.5). Only AlgorithmC honors it.
	Chain *stats.Chain
}

func (e Environment) validate() error { return validateEnvironment(e) }

// Optimizer optimizes queries against one catalog.
//
// Concurrency: an Optimizer is safe for concurrent use. Every Optimize*,
// Compare* and OptimizeSearch* call builds a fresh search-engine session —
// memo tables, plan arena and budget meter are all per-call — so concurrent
// optimizations share nothing but the catalog and options, which these
// methods only read. The one rule callers must keep: do not mutate the
// catalog (or a query block passed to a call) while optimizations are in
// flight. A server refreshing statistics at run time needs external
// coordination — internal/serve provides exactly that (a read/write lock
// plus cache invalidation); see also cmd/lecd.
type Optimizer struct {
	cat  *catalog.Catalog
	opts opt.Options
}

// New builds an optimizer with default options.
func New(cat *catalog.Catalog) *Optimizer {
	return &Optimizer{cat: cat}
}

// NewWithOptions builds an optimizer with explicit search options.
func NewWithOptions(cat *catalog.Catalog, opts opt.Options) *Optimizer {
	return &Optimizer{cat: cat, opts: opts}
}

// Catalog returns the catalog the optimizer plans against.
func (o *Optimizer) Catalog() *catalog.Catalog { return o.cat }

// Decision is the outcome of one optimization.
type Decision struct {
	// Strategy that produced the plan.
	Strategy Strategy
	// Plan is the chosen physical plan.
	Plan plan.Node
	// ExpectedCost is E[Φ] of the plan under the environment.
	ExpectedCost float64
	// Risk summarizes the plan's cost distribution.
	Risk opt.RiskProfile
	// Query is the optimized block.
	Query *query.SPJ
	// Stats holds the search engine's instrumentation counters: subsets
	// enumerated, join steps costed, prunes, cost-formula evaluations, memo
	// and arena hits, and the fail-soft events (non-finite costs, recovered
	// panics, degradations).
	Stats opt.Stats
	// Degraded reports that the search was interrupted (deadline, budget,
	// recovered panic) or had to discard poisoned costs, and Plan came from
	// the anytime degradation ladder. The plan is always valid and
	// executable — Degraded says it may not be the optimum the full search
	// would have found.
	Degraded bool
	// DegradeReason says why the run degraded (DegradeNone otherwise).
	DegradeReason DegradeReason
	// DegradeRung names the ladder rung that produced a degraded plan
	// (RungPartial or RungGreedy; empty for a completed search).
	DegradeRung string
	// Enumeration is the lattice enumerator the search actually used:
	// the configured Options.Enumeration, unless the connected enumerator
	// fell back to exhaustive for a disconnected join graph.
	Enumeration Enumeration
	// Tier names the planning tier that answered when tiered planning was
	// enabled (Options.Tier ≠ TierDP): "greedy" for the served fast path,
	// "dp" after an escalation. Empty when tiering was off or the strategy
	// routes around the tier controller (the multi-bucket candidate pools).
	Tier string
	// TierReason says why that tier answered: "low-risk"/"forced" for a
	// served greedy plan, or the escalation trigger ("gap", "variance",
	// "level-set", "objective", "fault", "unplannable").
	TierReason string
	// TierGap is the greedy plan's relative expected-cost gap vs the
	// admissible lower bound (greedy/LB − 1), when computed.
	TierGap float64
	// Trace is the structured decision trace — per-subset winner/runner-up
	// decisions and every finished root candidate — populated only when
	// Options.Trace is set. Render it with Trace.Render() or serialize it
	// as JSON.
	Trace *obs.Trace
	env   Environment
}

// Explain renders the plan tree with its cost summary.
func (d *Decision) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %v\nexpected cost: %.0f page I/Os (std %.0f, p95 %.0f)\n",
		d.Strategy, d.ExpectedCost, d.Risk.StdDev, d.Risk.P95)
	if d.Tier != "" {
		fmt.Fprintf(&b, "tier: %s (%s", d.Tier, d.TierReason)
		if !math.IsNaN(d.TierGap) && !math.IsInf(d.TierGap, 0) && d.TierGap >= 0 {
			fmt.Fprintf(&b, "; greedy %.1f%% above the expected-cost lower bound", 100*d.TierGap)
		}
		b.WriteString(")\n")
	}
	if d.Degraded {
		rung := d.DegradeRung
		if rung == "" {
			rung = "full-search"
		}
		fmt.Fprintf(&b, "degraded: %v (plan from %s)\n", d.DegradeReason, rung)
	}
	b.WriteString(plan.Explain(d.Plan))
	return b.String()
}

// CostAt evaluates the plan's cost at one specific memory value.
func (d *Decision) CostAt(mem float64) float64 { return plan.Cost(d.Plan, mem) }

// Optimize plans a query block with the given strategy. It is
// OptimizeContext under a background context: nothing can interrupt the
// search, so only genuine input errors fail it.
func (o *Optimizer) Optimize(q *query.SPJ, env Environment, s Strategy) (*Decision, error) {
	return o.OptimizeContext(context.Background(), q, env, s)
}

// OptimizeContext plans a query block with the given strategy under a
// request context and the configured Options.Budget. The search is
// fail-soft: when the deadline expires, the budget runs out, or the cost
// model panics or produces non-finite values, a valid plan from the anytime
// degradation ladder is returned with Decision.Degraded set. Errors are
// reserved for invalid inputs (see the Err* sentinels) and for interrupted
// runs where not even the fallback could plan.
func (o *Optimizer) OptimizeContext(ctx context.Context, q *query.SPJ, env Environment, s Strategy) (d *Decision, err error) {
	defer recoverToInternal(&err)
	if err := env.validate(); err != nil {
		return nil, err
	}
	if q == nil {
		return nil, fmt.Errorf("%w: nil query", ErrInvalidQuery)
	}
	if err := q.Validate(o.cat); err != nil {
		return nil, classifyErr(err)
	}
	if q.GroupBy != nil {
		return o.optimizeAggregate(ctx, q, env, s)
	}
	var res *opt.Result
	switch s {
	case LSCMean:
		res, err = opt.LSCPlanCtx(ctx, o.cat, q, o.opts, env.Memory, false)
	case LSCMode:
		res, err = opt.LSCPlanCtx(ctx, o.cat, q, o.opts, env.Memory, true)
	case AlgorithmA:
		res, err = opt.AlgorithmACtx(ctx, o.cat, q, o.opts, env.Memory)
	case AlgorithmB:
		res, err = opt.AlgorithmBCtx(ctx, o.cat, q, o.opts, env.Memory)
	case AlgorithmC:
		if env.Chain != nil {
			res, err = opt.AlgorithmCDynamicCtx(ctx, o.cat, q, o.opts, env.Chain, env.Memory)
		} else {
			res, err = opt.AlgorithmCCtx(ctx, o.cat, q, o.opts, env.Memory)
		}
	case AlgorithmD:
		res, err = opt.AlgorithmDCtx(ctx, o.cat, q, o.opts, env.Memory)
	default:
		return nil, fmt.Errorf("lec: unknown strategy %v", s)
	}
	if err != nil {
		return nil, classifyErr(err)
	}
	return o.newDecision(s, res, q, env), nil
}

// newDecision assembles the public Decision from an engine Result.
func (o *Optimizer) newDecision(s Strategy, res *opt.Result, q *query.SPJ, env Environment) *Decision {
	return &Decision{
		Strategy:      s,
		Plan:          res.Plan,
		ExpectedCost:  o.expectedCost(res, q, env),
		Risk:          opt.NewRiskProfile(res.Plan, env.Memory),
		Query:         q,
		Stats:         res.Count,
		Degraded:      res.Degraded,
		DegradeReason: res.Reason,
		DegradeRung:   res.Rung,
		Enumeration:   res.Enumeration,
		Tier:          res.Tier,
		TierReason:    res.TierReason,
		TierGap:       res.TierGap,
		Trace:         res.Trace,
		env:           env,
	}
}

// optimizeAggregate routes GROUP BY blocks through the aggregation-aware
// optimizer. LEC strategies see the full memory distribution; the LSC
// strategies emulate the classical approach by planning at a point
// estimate (mean or mode) and are then evaluated under the true
// distribution, so Compare stays apples-to-apples.
func (o *Optimizer) optimizeAggregate(ctx context.Context, q *query.SPJ, env Environment, s Strategy) (*Decision, error) {
	dm := env.Memory
	switch s {
	case LSCMean:
		dm = stats.Point(env.Memory.Mean())
	case LSCMode:
		dm = stats.Point(env.Memory.Mode())
	}
	res, err := opt.OptimizeWithAggregationCtx(ctx, o.cat, q, o.opts, dm)
	if err != nil {
		return nil, classifyErr(err)
	}
	return &Decision{
		Strategy:      s,
		Plan:          res.Plan,
		ExpectedCost:  plan.ExpCost(res.Plan, env.Memory),
		Risk:          opt.NewRiskProfile(res.Plan, env.Memory),
		Query:         q,
		Stats:         res.Count,
		Degraded:      res.Degraded,
		DegradeReason: res.Reason,
		DegradeRung:   res.Rung,
		Enumeration:   res.Enumeration,
		Tier:          res.Tier,
		TierReason:    res.TierReason,
		TierGap:       res.TierGap,
		env:           env,
	}, nil
}

// expectedCost normalizes every strategy's reported objective to the
// comparable E[Φ] under the environment (dynamic environments use the
// per-phase marginals).
func (o *Optimizer) expectedCost(res *opt.Result, q *query.SPJ, env Environment) float64 {
	if env.Chain != nil {
		return plan.ExpCostPhased(res.Plan, opt.PhaseDistsFor(q, env.Chain, env.Memory))
	}
	return plan.ExpCost(res.Plan, env.Memory)
}

// OptimizeSQL parses, binds and optimizes a SQL string with AlgorithmC —
// the recommended default.
func (o *Optimizer) OptimizeSQL(sql string, env Environment) (*Decision, error) {
	return o.OptimizeSQLWith(sql, env, AlgorithmC)
}

// OptimizeSQLWith parses, binds and optimizes a SQL string with an explicit
// strategy.
func (o *Optimizer) OptimizeSQLWith(sql string, env Environment, s Strategy) (*Decision, error) {
	return o.OptimizeSQLWithContext(context.Background(), sql, env, s)
}

// OptimizeSQLContext is OptimizeSQL under a request context and budget.
func (o *Optimizer) OptimizeSQLContext(ctx context.Context, sql string, env Environment) (*Decision, error) {
	return o.OptimizeSQLWithContext(ctx, sql, env, AlgorithmC)
}

// OptimizeSQLWithContext parses, binds and optimizes a SQL string with an
// explicit strategy under a request context and budget. Parse and binding
// failures surface as ErrInvalidQuery or ErrUnknownRelation.
func (o *Optimizer) OptimizeSQLWithContext(ctx context.Context, sql string, env Environment, s Strategy) (d *Decision, err error) {
	defer recoverToInternal(&err)
	q, err := sqlparse.ParseAndBind(sql, o.cat)
	if err != nil {
		return nil, classifyErr(err)
	}
	return o.OptimizeContext(ctx, q, env, s)
}

// Search selects a Space × Objective combination for OptimizeSearch — the
// unified engine's axes, exposed directly. The zero value is the left-deep
// space under the expected-cost objective, i.e. AlgorithmC.
type Search struct {
	// Space is the plan-shape family searched: SpaceLeftDeep (default),
	// SpaceBushy, or SpacePipelined.
	Space Space
	// Objective is the risk posture: nil or ExpectedCost{} for risk
	// neutrality, ExponentialUtility for certainty-equivalent optimization,
	// VariancePenalized for mean-variance trade-offs.
	Objective Objective
}

// Re-exported engine types, so callers configure a Search without importing
// internal packages.
type (
	// Space is the plan-shape family (left-deep / bushy / pipelined).
	Space = opt.Space
	// Objective is the optimization objective.
	Objective = opt.Objective
	// ExpectedCost is the risk-neutral objective (the LEC default).
	ExpectedCost = opt.ExpectedCost
	// ExponentialUtility minimizes certainty equivalents under u(x)=e^{γx}.
	ExponentialUtility = opt.ExponentialUtility
	// VariancePenalized minimizes E[cost] + λ·Var[cost] per phase.
	VariancePenalized = opt.VariancePenalized
	// Options are the engine's search options (join methods, cross-product
	// policy, top-c width, work Budget, ...).
	Options = opt.Options
	// Budget bounds one optimization run's work; see Options.Budget. The
	// zero value is unlimited.
	Budget = opt.Budget
	// DegradeReason says why a Decision is degraded.
	DegradeReason = opt.DegradeReason
	// Enumeration selects the subset-lattice enumerator (see
	// Options.Enumeration): EnumExhaustive walks every subset, EnumConnected
	// only connected subgraphs of the join graph.
	Enumeration = opt.Enumeration
	// Trace is the structured decision trace (see Decision.Trace and
	// Options.Trace).
	Trace = obs.Trace
	// TraceEvent is one per-subset DP decision inside a Trace.
	TraceEvent = obs.TraceEvent
	// OptMetrics is the engine's registry-backed metric bundle (see
	// Options.Metrics and obs.NewOptMetrics).
	OptMetrics = obs.OptMetrics
	// Tier selects the tiered-planning mode (see Options.Tier): TierDP,
	// TierAuto, or TierGreedy.
	Tier = opt.Tier
	// TierRisk sets TierAuto's escalation thresholds (see Options.TierRisk).
	TierRisk = opt.TierRisk
)

// Engine spaces.
const (
	SpaceLeftDeep  = opt.SpaceLeftDeep
	SpaceBushy     = opt.SpaceBushy
	SpacePipelined = opt.SpacePipelined
)

// Degradation causes (see Decision.DegradeReason).
const (
	DegradeNone      = opt.DegradeNone
	DegradeDeadline  = opt.DegradeDeadline
	DegradeBudget    = opt.DegradeBudget
	DegradePanic     = opt.DegradePanic
	DegradeNonFinite = opt.DegradeNonFinite
)

// Degradation-ladder rungs (see Decision.DegradeRung).
const (
	RungPartial = opt.RungPartial
	RungGreedy  = opt.RungGreedy
)

// Lattice enumerators (see Options.Enumeration).
const (
	EnumExhaustive = opt.EnumExhaustive
	EnumConnected  = opt.EnumConnected
)

// Tiered-planning modes (see Options.Tier).
const (
	TierDP     = opt.TierDP
	TierAuto   = opt.TierAuto
	TierGreedy = opt.TierGreedy
)

// ParseEnumeration parses an enumerator name ("exhaustive", "connected";
// "" means exhaustive) for flag and config surfaces.
func ParseEnumeration(s string) (Enumeration, error) { return opt.ParseEnumeration(s) }

// ParseTier parses a tier name ("dp", "auto", "greedy"; "" means dp) for
// flag and config surfaces.
func ParseTier(s string) (Tier, error) { return opt.ParseTier(s) }

// OptimizeSearch plans a query block with an explicit Space × Objective
// configuration of the unified engine. The environment supplies the coster:
// a Markov chain yields per-phase distributions (paper §3.5), a bare memory
// distribution the static model (§3.4). This is the route to combinations
// the named strategies cannot express — bushy × utility, pipelined ×
// variance-penalized, dynamic × bushy.
func (o *Optimizer) OptimizeSearch(q *query.SPJ, env Environment, search Search) (*Decision, error) {
	return o.OptimizeSearchContext(context.Background(), q, env, search)
}

// OptimizeSearchContext is OptimizeSearch under a request context and
// budget, with the same fail-soft contract as OptimizeContext.
func (o *Optimizer) OptimizeSearchContext(ctx context.Context, q *query.SPJ, env Environment, search Search) (d *Decision, err error) {
	defer recoverToInternal(&err)
	if err := env.validate(); err != nil {
		return nil, err
	}
	if q == nil {
		return nil, fmt.Errorf("%w: nil query", ErrInvalidQuery)
	}
	if err := q.Validate(o.cat); err != nil {
		return nil, classifyErr(err)
	}
	var coster opt.Coster
	if env.Chain != nil {
		coster = opt.MarkovParams{Chain: env.Chain, Initial: env.Memory}
	} else {
		coster = opt.StaticParams{Mem: env.Memory}
	}
	eng, err := opt.NewOptimizer(o.cat, q, o.opts, opt.Config{
		Space:     search.Space,
		Coster:    coster,
		Objective: search.Objective,
	})
	if err != nil {
		return nil, classifyErr(err)
	}
	res, err := eng.OptimizeCtx(ctx)
	if err != nil {
		return nil, classifyErr(err)
	}
	return o.newDecision(AlgorithmC, res, q, env), nil
}

// Compare optimizes the query under every strategy and returns the
// decisions in Strategies() order — the side-by-side view the paper's
// argument is about.
func (o *Optimizer) Compare(q *query.SPJ, env Environment) ([]*Decision, error) {
	return o.CompareContext(context.Background(), q, env)
}

// CompareContext is Compare under a request context and budget. Each
// strategy gets its own budget meter; a strategy that degrades still
// contributes its (flagged) decision.
func (o *Optimizer) CompareContext(ctx context.Context, q *query.SPJ, env Environment) ([]*Decision, error) {
	out := make([]*Decision, 0, len(Strategies()))
	for _, s := range Strategies() {
		d, err := o.OptimizeContext(ctx, q, env, s)
		if err != nil {
			return nil, fmt.Errorf("lec: strategy %v: %w", s, err)
		}
		out = append(out, d)
	}
	return out, nil
}
